package core

import (
	"context"
	"sort"
	"time"

	"netfail/internal/obs"
	"netfail/internal/pool"
	"netfail/internal/syslog"
	"netfail/internal/topo"
	"netfail/internal/trace"
)

// SyslogTraces is the structured form of a syslog capture: the
// message stream resolved onto links and split into the channels the
// comparison needs.
type SyslogTraces struct {
	// PerRouterAdj has one transition per IS-IS adjacency message,
	// with Reporter naming the sending router — the unit Table 3
	// counts (None/One/Both routers reporting).
	PerRouterAdj []trace.Transition
	// MergedAdj is the per-link state stream: the two routers'
	// reports of one event are collapsed into a single transition,
	// while genuinely repeated transitions (double Down/Up) survive
	// for ambiguity analysis.
	MergedAdj []trace.Transition
	// MergedPhysical is the same merge over %LINK/%LINEPROTO
	// messages.
	MergedPhysical []trace.Transition
	// Unresolved counts messages whose (router, interface) pair did
	// not map to a known link.
	Unresolved int
	// NonLink counts messages of kinds the analysis ignores.
	NonLink int
	// AdjMessages and PhysMessages count resolved messages by class.
	AdjMessages  int
	PhysMessages int
}

// ExtractSyslog resolves and merges a syslog capture against the
// (mined) topology. mergeWindow is the span within which two
// same-direction messages are treated as the two routers' reports of
// one transition; the paper's ten-second matching window is the
// natural choice.
func ExtractSyslog(net *topo.Network, msgs []*syslog.Message, mergeWindow time.Duration) *SyslogTraces {
	return ExtractSyslogParallel(context.Background(), net, msgs, mergeWindow, 1)
}

// extractShard is one worker's output: the transitions and counters
// for a contiguous chunk of the message stream.
type extractShard struct {
	adj, phys, perRouter []trace.Transition
}

// ExtractSyslogParallel is ExtractSyslog sharded across a bounded
// worker pool: the capture is split into contiguous chunks parsed
// concurrently, the shard outputs are concatenated in chunk order
// (reproducing the sequential message order exactly), and the per-link
// merge then fans out over links. Output is byte-identical to the
// sequential path for any worker count.
func ExtractSyslogParallel(ctx context.Context, net *topo.Network, msgs []*syslog.Message, mergeWindow time.Duration, workers int) *SyslogTraces {
	ctx, done := obs.Stage(ctx, "extract-syslog")
	defer done()
	st := &SyslogTraces{}
	bounds := chunkBounds(len(msgs), workers)
	shards := make([]extractShard, len(bounds)-1)
	var tally extractTally
	// A cancellation here leaves st partially filled; callers observe
	// it through ctx.Err() and discard the result, so the error is not
	// threaded through the (pre-context) extract signature.
	_ = pool.ForEachCtx(ctx, len(shards), workers, func(_ context.Context, i int) {
		var s extractShard
		var unresolved, nonLink, adjN, physN int
		for _, m := range msgs[bounds[i]:bounds[i+1]] {
			ev, err := syslog.ParseLinkEvent(m)
			if err != nil {
				nonLink++
				continue
			}
			r, ok := net.Routers[ev.Router]
			if !ok {
				unresolved++
				continue
			}
			ifc := r.Interface(ev.Interface)
			if ifc == nil || ifc.Link == "" {
				unresolved++
				continue
			}
			dir := trace.Down
			if ev.Up {
				dir = trace.Up
			}
			switch ev.Type {
			case syslog.EventISISAdj:
				adjN++
				t := trace.Transition{Time: ev.Time, Link: ifc.Link, Dir: dir, Kind: trace.KindISISAdj, Reporter: ev.Router}
				s.adj = append(s.adj, t)
				s.perRouter = append(s.perRouter, t)
			case syslog.EventLink, syslog.EventLineProto:
				physN++
				s.phys = append(s.phys, trace.Transition{Time: ev.Time, Link: ifc.Link, Dir: dir, Kind: trace.KindPhysical, Reporter: ev.Router})
			default:
				nonLink++
			}
		}
		shards[i] = s
		tally.add(unresolved, nonLink, adjN, physN)
	})
	st.Unresolved, st.NonLink, st.AdjMessages, st.PhysMessages = tally.snapshot()

	var adj, phys []trace.Transition
	for _, s := range shards {
		adj = append(adj, s.adj...)
		phys = append(phys, s.phys...)
		st.PerRouterAdj = append(st.PerRouterAdj, s.perRouter...)
	}

	_ = pool.StagesCtx(ctx, workers,
		func(context.Context) { st.MergedAdj = mergeLinkStreamParallel(adj, mergeWindow, workers) },
		func(context.Context) { st.MergedPhysical = mergeLinkStreamParallel(phys, mergeWindow, workers) },
	)
	return st
}

// mergeLinkStream collapses per-router message streams into per-link
// transition streams. Within a link, a message in the same direction
// as the previous one and within the merge window is the counterpart
// router's report of the same event and is absorbed; beyond the
// window it is a genuine repeated transition and is emitted (the
// reconstruction records it as an ambiguity).
func mergeLinkStream(msgs []trace.Transition, mergeWindow time.Duration) []trace.Transition {
	return mergeLinkStreamParallel(msgs, mergeWindow, 1)
}

// mergeLinkStreamParallel shards the per-link merge across the worker
// pool. Each link's stream merges independently; the shard outputs
// concatenate in sorted link order — the order the sequential loop
// visits — before the final time sort, so the result is byte-identical
// for any worker count.
func mergeLinkStreamParallel(msgs []trace.Transition, mergeWindow time.Duration, workers int) []trace.Transition {
	grouped := trace.ByLink(msgs)
	links := make([]topo.LinkID, 0, len(grouped))
	for l := range grouped {
		links = append(links, l)
	}
	sort.Slice(links, func(i, j int) bool { return links[i] < links[j] })

	merged := make([][]trace.Transition, len(links))
	pool.ForEach(len(links), workers, func(i int) {
		merged[i] = mergeOneLink(grouped[links[i]], mergeWindow)
	})
	out := make([]trace.Transition, 0, len(msgs))
	for _, m := range merged {
		out = append(out, m...)
	}
	trace.SortTransitions(out)
	return out
}

// mergeOneLink collapses one link's time-sorted message stream.
func mergeOneLink(seq []trace.Transition, mergeWindow time.Duration) []trace.Transition {
	var out []trace.Transition
	var lastDir trace.Direction
	var lastEmit time.Time
	seen := false
	for _, m := range seq {
		if seen && m.Dir == lastDir && m.Time.Sub(lastEmit) <= mergeWindow {
			continue // counterpart router's duplicate
		}
		out = append(out, m)
		lastDir, lastEmit, seen = m.Dir, m.Time, true
	}
	return out
}
