package core

import (
	"sort"
	"time"

	"netfail/internal/syslog"
	"netfail/internal/topo"
	"netfail/internal/trace"
)

// SyslogTraces is the structured form of a syslog capture: the
// message stream resolved onto links and split into the channels the
// comparison needs.
type SyslogTraces struct {
	// PerRouterAdj has one transition per IS-IS adjacency message,
	// with Reporter naming the sending router — the unit Table 3
	// counts (None/One/Both routers reporting).
	PerRouterAdj []trace.Transition
	// MergedAdj is the per-link state stream: the two routers'
	// reports of one event are collapsed into a single transition,
	// while genuinely repeated transitions (double Down/Up) survive
	// for ambiguity analysis.
	MergedAdj []trace.Transition
	// MergedPhysical is the same merge over %LINK/%LINEPROTO
	// messages.
	MergedPhysical []trace.Transition
	// Unresolved counts messages whose (router, interface) pair did
	// not map to a known link.
	Unresolved int
	// NonLink counts messages of kinds the analysis ignores.
	NonLink int
	// AdjMessages and PhysMessages count resolved messages by class.
	AdjMessages  int
	PhysMessages int
}

// ExtractSyslog resolves and merges a syslog capture against the
// (mined) topology. mergeWindow is the span within which two
// same-direction messages are treated as the two routers' reports of
// one transition; the paper's ten-second matching window is the
// natural choice.
func ExtractSyslog(net *topo.Network, msgs []*syslog.Message, mergeWindow time.Duration) *SyslogTraces {
	st := &SyslogTraces{}
	var adj, phys []trace.Transition

	for _, m := range msgs {
		ev, err := syslog.ParseLinkEvent(m)
		if err != nil {
			st.NonLink++
			continue
		}
		r, ok := net.Routers[ev.Router]
		if !ok {
			st.Unresolved++
			continue
		}
		ifc := r.Interface(ev.Interface)
		if ifc == nil || ifc.Link == "" {
			st.Unresolved++
			continue
		}
		dir := trace.Down
		if ev.Up {
			dir = trace.Up
		}
		switch ev.Type {
		case syslog.EventISISAdj:
			st.AdjMessages++
			t := trace.Transition{Time: ev.Time, Link: ifc.Link, Dir: dir, Kind: trace.KindISISAdj, Reporter: ev.Router}
			adj = append(adj, t)
			st.PerRouterAdj = append(st.PerRouterAdj, t)
		case syslog.EventLink, syslog.EventLineProto:
			st.PhysMessages++
			phys = append(phys, trace.Transition{Time: ev.Time, Link: ifc.Link, Dir: dir, Kind: trace.KindPhysical, Reporter: ev.Router})
		default:
			st.NonLink++
		}
	}

	st.MergedAdj = mergeLinkStream(adj, mergeWindow)
	st.MergedPhysical = mergeLinkStream(phys, mergeWindow)
	return st
}

// mergeLinkStream collapses per-router message streams into per-link
// transition streams. Within a link, a message in the same direction
// as the previous one and within the merge window is the counterpart
// router's report of the same event and is absorbed; beyond the
// window it is a genuine repeated transition and is emitted (the
// reconstruction records it as an ambiguity).
func mergeLinkStream(msgs []trace.Transition, mergeWindow time.Duration) []trace.Transition {
	grouped := trace.ByLink(msgs)
	links := make([]topo.LinkID, 0, len(grouped))
	for l := range grouped {
		links = append(links, l)
	}
	sort.Slice(links, func(i, j int) bool { return links[i] < links[j] })

	var out []trace.Transition
	for _, link := range links {
		var lastDir trace.Direction
		var lastEmit time.Time
		seen := false
		for _, m := range grouped[link] {
			if seen && m.Dir == lastDir && m.Time.Sub(lastEmit) <= mergeWindow {
				continue // counterpart router's duplicate
			}
			out = append(out, m)
			lastDir, lastEmit, seen = m.Dir, m.Time, true
		}
	}
	trace.SortTransitions(out)
	return out
}
