package core

import (
	"sort"
	"time"

	"netfail/internal/topo"
	"netfail/internal/trace"
)

// EgregiousMatch is a matched pair of isolation events whose
// durations disagree wildly — the paper's §4.4 anecdotes ("in one
// case a site is isolated for 7 hours; syslog only detects the
// isolation nine seconds before it ended; in a second case, syslog
// believes a site isolated for 17 hours that IS-IS saw for under a
// minute").
type EgregiousMatch struct {
	Customer string
	ISIS     trace.Interval
	Syslog   trace.Interval
	// Ratio is max(duration)/min(duration); Overlap the shared time.
	Ratio   float64
	Overlap time.Duration
}

// EgregiousIsolations returns the matched isolation-event pairs with
// the largest duration disagreement, worst first, up to limit.
func (a *Analysis) EgregiousIsolations(limit int) []EgregiousMatch {
	if len(a.In.Customers) == 0 {
		return nil
	}
	netWithCustomers := *a.In.Network
	netWithCustomers.Customers = a.In.Customers
	g := topo.NewGraph(&netWithCustomers)
	isisEvents := IsolationEvents(g, a.In.Customers, a.ISISFailures, a.In.End)
	syslogEvents := IsolationEvents(g, a.In.Customers, a.SyslogFailures, a.In.End)

	byCustomer := make(map[string][]IsolationEvent)
	for _, e := range syslogEvents {
		byCustomer[e.Customer] = append(byCustomer[e.Customer], e)
	}
	used := make(map[string]map[int]bool)
	var out []EgregiousMatch
	for _, ie := range isisEvents {
		cands := byCustomer[ie.Customer]
		for j, se := range cands {
			if used[ie.Customer][j] {
				continue
			}
			lo := maxTime(ie.Interval.Start, se.Interval.Start)
			hi := minTime(ie.Interval.End, se.Interval.End)
			if !hi.After(lo) {
				continue
			}
			if used[ie.Customer] == nil {
				used[ie.Customer] = make(map[int]bool)
			}
			used[ie.Customer][j] = true
			di, ds := ie.Duration(), se.Duration()
			longer, shorter := di, ds
			if ds > di {
				longer, shorter = ds, di
			}
			ratio := float64(longer) / float64(max64(shorter, time.Second))
			out = append(out, EgregiousMatch{
				Customer: ie.Customer,
				ISIS:     ie.Interval,
				Syslog:   se.Interval,
				Ratio:    ratio,
				Overlap:  hi.Sub(lo),
			})
			break
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Ratio > out[j].Ratio })
	if limit > 0 && len(out) > limit {
		out = out[:limit]
	}
	return out
}

func max64(d, floor time.Duration) time.Duration {
	if d < floor {
		return floor
	}
	return d
}

// TimelineEntry is one event in a link's merged chronology.
type TimelineEntry struct {
	Time time.Time
	// Source is "syslog" or "isis".
	Source string
	Dir    trace.Direction
	// Reporter is the observing router (syslog) or LSP originator.
	Reporter string
}

// LinkTimeline merges both sources' transition streams for one link
// into a single chronology — the view an operator wants when chasing
// one of the egregious disagreements.
func (a *Analysis) LinkTimeline(link topo.LinkID) []TimelineEntry {
	var out []TimelineEntry
	add := func(ts []trace.Transition, source string) {
		for _, t := range ts {
			if t.Link != link {
				continue
			}
			out = append(out, TimelineEntry{
				Time: t.Time, Source: source, Dir: t.Dir, Reporter: t.Reporter,
			})
		}
	}
	add(a.SyslogAdj, "syslog")
	add(a.ISReach, "isis")
	sort.Slice(out, func(i, j int) bool {
		if !out[i].Time.Equal(out[j].Time) {
			return out[i].Time.Before(out[j].Time)
		}
		return out[i].Source < out[j].Source
	})
	return out
}

// WorstDisagreementLinks ranks analyzed links by the absolute gap
// between syslog and IS-IS downtime, worst first, up to limit.
func (a *Analysis) WorstDisagreementLinks(limit int) []topo.LinkID {
	syslogDown := perLinkDowntime(a.SyslogFailures)
	isisDown := perLinkDowntime(a.ISISFailures)
	type row struct {
		link topo.LinkID
		gap  time.Duration
	}
	var rows []row
	for _, l := range a.AnalyzedLinks {
		gap := syslogDown[l.ID] - isisDown[l.ID]
		if gap < 0 {
			gap = -gap
		}
		if gap > 0 {
			rows = append(rows, row{l.ID, gap})
		}
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].gap != rows[j].gap {
			return rows[i].gap > rows[j].gap
		}
		return rows[i].link < rows[j].link
	})
	if limit > 0 && len(rows) > limit {
		rows = rows[:limit]
	}
	out := make([]topo.LinkID, len(rows))
	for i, r := range rows {
		out[i] = r.link
	}
	return out
}

func perLinkDowntime(fs []trace.Failure) map[topo.LinkID]time.Duration {
	out := make(map[topo.LinkID]time.Duration)
	for _, f := range fs {
		out[f.Link] += f.Duration()
	}
	return out
}
