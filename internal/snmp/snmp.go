// Package snmp models the other ubiquitous failure data source the
// paper's introduction lists (§1): an NMS polling every interface's
// ifOperStatus at a fixed interval (Labovitz et al. combined exactly
// this with operational logs). Polling quantizes everything to the
// poll grid — a failure shorter than the interval is usually
// invisible, and every boundary is rounded to the next poll — which
// is why the paper's comparison needed message-driven sources.
//
// The poller replays a ground-truth failure trace and emits the
// transition stream the NMS would infer, ready for the same matching
// machinery as the syslog and IS-IS streams.
package snmp

import (
	"math/rand"
	"sort"
	"time"

	"netfail/internal/match"
	"netfail/internal/topo"
	"netfail/internal/trace"
)

// Params configures the poller.
type Params struct {
	// Interval is the polling period (operationally minutes; SNMP
	// walks of hundreds of devices are not cheap).
	Interval time.Duration
	// PhaseJitter spreads each link's poll phase uniformly over the
	// interval, as real NMS schedulers do; zero polls everything on
	// the same grid.
	PhaseJitter bool
	// TimeoutLoss is the probability a poll times out (counts as no
	// sample; the NMS keeps the previous state).
	TimeoutLoss float64
	// Seed drives phases and timeouts.
	Seed int64
}

// DefaultParams polls every five minutes with phase jitter.
func DefaultParams() Params {
	return Params{Interval: 5 * time.Minute, PhaseJitter: true, TimeoutLoss: 0.002, Seed: 1}
}

// Poll replays the failure trace and returns the inferred transition
// stream over [start, end), tagged trace.KindSNMP. NMS state starts
// "up" for every link.
func Poll(net *topo.Network, failures []trace.Failure, p Params, start, end time.Time) []trace.Transition {
	if p.Interval <= 0 {
		p.Interval = 5 * time.Minute
	}
	byLink := match.GroupByLink(failures)
	rng := rand.New(rand.NewSource(p.Seed))

	var out []trace.Transition
	for _, link := range net.Links {
		fs := byLink[link.ID]
		phase := time.Duration(0)
		if p.PhaseJitter {
			phase = time.Duration(rng.Int63n(int64(p.Interval)))
		}
		downAt := func(t time.Time) bool {
			i := sort.Search(len(fs), func(i int) bool { return fs[i].End.After(t) })
			return i < len(fs) && !t.Before(fs[i].Start)
		}
		nmsDown := false
		for t := start.Add(phase); t.Before(end); t = t.Add(p.Interval) {
			if rng.Float64() < p.TimeoutLoss {
				continue // timeout: previous state stands
			}
			cur := downAt(t)
			if cur == nmsDown {
				continue
			}
			nmsDown = cur
			dir := trace.Up
			if cur {
				dir = trace.Down
			}
			out = append(out, trace.Transition{
				Time:     t,
				Link:     link.ID,
				Dir:      dir,
				Kind:     trace.KindSNMP,
				Reporter: "nms",
			})
		}
	}
	trace.SortTransitions(out)
	return out
}

// CompareStats summarizes how polling distorts a failure record.
type CompareStats struct {
	// ReferenceFailures and Detected mirror probe.Coverage: a
	// reference failure is detected if an SNMP failure overlaps it.
	ReferenceFailures int
	Detected          int
	// ShortMissed counts undetected failures shorter than the poll
	// interval (the structural blind spot).
	ShortMissed int
	// DowntimeRef and DowntimeSNMP compare total downtime; polling
	// rounds every boundary up to the next poll.
	DowntimeRef  time.Duration
	DowntimeSNMP time.Duration
}

// Compare reconstructs failures from the SNMP stream and assesses
// them against a reference failure list.
func Compare(snmpTransitions []trace.Transition, reference []trace.Failure, interval time.Duration) CompareStats {
	rec := trace.Reconstruct(snmpTransitions)
	byLink := match.GroupByLink(rec.Failures)
	var cs CompareStats
	cs.DowntimeRef = trace.TotalDowntime(reference)
	cs.DowntimeSNMP = trace.TotalDowntime(rec.Failures)
	for _, f := range reference {
		cs.ReferenceFailures++
		if match.Intersects(f, byLink) {
			cs.Detected++
		} else if f.Duration() < interval {
			cs.ShortMissed++
		}
	}
	return cs
}

// Fraction returns detected over reference.
func (c CompareStats) Fraction() float64 {
	if c.ReferenceFailures == 0 {
		return 0
	}
	return float64(c.Detected) / float64(c.ReferenceFailures)
}
