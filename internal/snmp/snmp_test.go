package snmp

import (
	"testing"
	"time"

	"netfail/internal/topo"
	"netfail/internal/trace"
)

func snmpNet(t *testing.T) (*topo.Network, topo.LinkID) {
	t.Helper()
	n := topo.NewNetwork()
	for i, name := range []string{"core-a", "cpe-1"} {
		class := topo.Core
		if i == 1 {
			class = topo.CPE
		}
		if err := n.AddRouter(&topo.Router{Name: name, Class: class, SystemID: topo.SystemIDFromIndex(i + 1)}); err != nil {
			t.Fatal(err)
		}
	}
	l, err := n.AddLink(topo.Endpoint{Host: "core-a", Port: "Te0"}, topo.Endpoint{Host: "cpe-1", Port: "Gi0"}, 0, 10)
	if err != nil {
		t.Fatal(err)
	}
	return n, l.ID
}

func at(min int) time.Time {
	return time.Date(2011, 5, 1, 0, 0, 0, 0, time.UTC).Add(time.Duration(min) * time.Minute)
}

func fixedParams() Params {
	return Params{Interval: 5 * time.Minute, PhaseJitter: false, TimeoutLoss: 0, Seed: 1}
}

func TestPollDetectsLongFailureQuantized(t *testing.T) {
	n, link := snmpNet(t)
	failures := []trace.Failure{{Link: link, Start: at(62), End: at(93)}}
	ts := Poll(n, failures, fixedParams(), at(0), at(200))
	if len(ts) != 2 {
		t.Fatalf("transitions = %+v", ts)
	}
	// Down detected at the first poll inside the failure (t=65),
	// Up at the first poll after it ends (t=95).
	if !ts[0].Time.Equal(at(65)) || ts[0].Dir != trace.Down {
		t.Errorf("down = %+v", ts[0])
	}
	if !ts[1].Time.Equal(at(95)) || ts[1].Dir != trace.Up {
		t.Errorf("up = %+v", ts[1])
	}
	if ts[0].Kind != trace.KindSNMP {
		t.Errorf("kind = %v", ts[0].Kind)
	}
}

func TestPollMissesShortFailure(t *testing.T) {
	n, link := snmpNet(t)
	// Two minutes between two polls.
	failures := []trace.Failure{{Link: link, Start: at(61), End: at(63)}}
	ts := Poll(n, failures, fixedParams(), at(0), at(200))
	if len(ts) != 0 {
		t.Errorf("short failure visible to polling: %+v", ts)
	}
}

func TestPollMergesAdjacentFailures(t *testing.T) {
	n, link := snmpNet(t)
	// Two failures whose gap contains no poll tick look like one
	// long outage to the NMS.
	failures := []trace.Failure{
		{Link: link, Start: at(61), End: at(71)},
		{Link: link, Start: at(73), End: at(84)},
	}
	ts := Poll(n, failures, fixedParams(), at(0), at(200))
	rec := trace.Reconstruct(ts)
	if len(rec.Failures) != 1 {
		t.Errorf("NMS failures = %+v, want one merged", rec.Failures)
	}
}

func TestPollDeterministicWithJitter(t *testing.T) {
	n, link := snmpNet(t)
	failures := []trace.Failure{{Link: link, Start: at(60), End: at(120)}}
	p := DefaultParams()
	a := Poll(n, failures, p, at(0), at(300))
	b := Poll(n, failures, p, at(0), at(300))
	if len(a) != len(b) {
		t.Fatal("nondeterministic")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("nondeterministic content")
		}
	}
}

func TestCompareStats(t *testing.T) {
	n, link := snmpNet(t)
	reference := []trace.Failure{
		{Link: link, Start: at(60), End: at(120)},                        // long: detected
		{Link: link, Start: at(201), End: at(201).Add(90 * time.Second)}, // short, between polls: missed
		{Link: link, Start: at(300), End: at(400)},                       // long: detected
	}
	ts := Poll(n, reference, fixedParams(), at(0), at(500))
	cs := Compare(ts, reference, 5*time.Minute)
	if cs.ReferenceFailures != 3 || cs.Detected != 2 || cs.ShortMissed != 1 {
		t.Errorf("stats = %+v", cs)
	}
	if f := cs.Fraction(); f < 0.6 || f > 0.7 {
		t.Errorf("fraction = %v", f)
	}
	// Polling rounds boundaries outward on the up side, so SNMP
	// downtime for detected failures is similar-or-larger, but the
	// missed short failure pulls the total down: just require both
	// positive and different.
	if cs.DowntimeSNMP <= 0 || cs.DowntimeRef <= 0 {
		t.Errorf("downtime: %+v", cs)
	}
}

func TestPollZeroIntervalDefaults(t *testing.T) {
	n, link := snmpNet(t)
	failures := []trace.Failure{{Link: link, Start: at(60), End: at(120)}}
	ts := Poll(n, failures, Params{}, at(0), at(300))
	if len(ts) == 0 {
		t.Error("zero-value params produced nothing")
	}
}
