// Package intern provides the append-only symbol table behind the
// zero-allocation hot paths: the []byte syslog tokenizer and the IS-IS
// decode both see the same small vocabulary — hostnames, interface
// names, message mnemonics, neighbor keys — millions of times per
// campaign, and converting each sighting to a fresh string is exactly
// the per-record garbage the allocation discipline (ROADMAP item 4)
// forbids. Interning turns the conversion into a map probe: the first
// sighting of a symbol pays one allocation, every later sighting
// returns the canonical string for free.
//
// The table is built for one write-rarely/read-constantly workload:
//
//   - Reads are lock-free. Lookups go to an immutable snapshot map
//     published through an atomic pointer; the m[string(b)] probe is
//     recognized by the compiler and does not allocate or copy.
//   - Writes are mutex-serialized into a dirty overlay map. A snapshot
//     miss falls through to the overlay under the lock; when the lock
//     path has been taken as many times as the overlay holds entries,
//     the overlay is promoted into a fresh snapshot (the sync.Map
//     heuristic), after which the steady state is lock-free again.
//
// Concurrent readers and writers are safe; the returned strings are
// canonical (pointer-equal for equal byte content) for the life of the
// table, which also makes them cheap map keys downstream.
package intern

import (
	"sync"
	"sync/atomic"
)

// Table is an append-only string intern table safe for concurrent use.
// The zero value is ready; Table must not be copied after first use.
type Table struct {
	// Limit optionally caps the symbol count. Once Len() reaches the
	// limit, unseen symbols are returned as ordinary fresh strings and
	// not retained, so a hostile or corrupted input stream (the
	// faultinject corpora, a real-world free-text field) degrades to
	// the pre-interning allocation rate instead of growing the table
	// without bound. Zero means unlimited. Set before first use.
	Limit int

	snap   atomic.Pointer[map[string]string]
	mu     sync.Mutex
	dirty  map[string]string // guarded by mu
	misses int               // guarded by mu
}

// load returns the current read snapshot (nil before first promotion —
// lookups on a nil map are legal and miss).
//
//netfail:hotpath
func (t *Table) load() map[string]string {
	if p := t.snap.Load(); p != nil {
		return *p
	}
	return nil
}

// Intern returns the canonical string for b, adding it to the table on
// first sighting. The warm path — symbol present in the published
// snapshot — is lock-free and allocation-free.
//
//netfail:hotpath
func (t *Table) Intern(b []byte) string {
	if s, ok := t.load()[string(b)]; ok {
		return s
	}
	return t.internSlow(b)
}

// InternString is Intern for callers that already hold a string; on
// the warm path it returns the canonical copy without retaining the
// argument (deduplicating substrings that pin large parent buffers).
//
//netfail:hotpath
func (t *Table) InternString(s string) string {
	if c, ok := t.load()[s]; ok {
		return c
	}
	return t.internSlowString(s)
}

// internSlowString adapts the string-keyed miss path onto internSlow.
// The conversion allocates, which is fine here: this is the cold first
// sighting of a symbol, not the per-record path.
func (t *Table) internSlowString(s string) string {
	return t.internSlow([]byte(s))
}

// internSlow is the locked miss path: probe the dirty overlay, insert
// on first sighting, and promote the overlay into a new snapshot when
// the lock path has paid for itself.
func (t *Table) internSlow(b []byte) string {
	t.mu.Lock()
	if s, ok := t.dirty[string(b)]; ok {
		t.missLocked()
		t.mu.Unlock()
		return s
	}
	if t.Limit > 0 && t.lenLocked() >= t.Limit {
		t.mu.Unlock()
		return string(b)
	}
	s := string(b)
	if t.dirty == nil {
		t.dirty = make(map[string]string)
	}
	t.dirty[s] = s
	t.mu.Unlock()
	return s
}

// missLocked counts one locked lookup that found its symbol in the
// dirty overlay, and promotes the overlay once the lock path has been
// taken len(dirty) times — repeat traffic on unpromoted symbols is the
// signal that a new snapshot pays for itself. Insertions deliberately
// do not count: promoting on every insert would copy the snapshot
// per new symbol (quadratic startup) for no read-path benefit.
func (t *Table) missLocked() {
	t.misses++
	if t.misses < len(t.dirty) {
		return
	}
	snap := t.load()
	next := make(map[string]string, len(snap)+len(t.dirty))
	for k, v := range snap {
		next[k] = v
	}
	for k, v := range t.dirty {
		next[k] = v
	}
	t.snap.Store(&next)
	t.dirty = nil
	t.misses = 0
}

// lenLocked counts distinct symbols across snapshot and overlay.
func (t *Table) lenLocked() int {
	n := len(t.load())
	for k := range t.dirty {
		if _, ok := t.load()[k]; !ok {
			n++
		}
	}
	return n
}

// Len returns the number of interned symbols.
func (t *Table) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.lenLocked()
}

// Lookup reports the canonical string for b without inserting.
func (t *Table) Lookup(b []byte) (string, bool) {
	if s, ok := t.load()[string(b)]; ok {
		return s, true
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	s, ok := t.dirty[string(b)]
	return s, ok
}
