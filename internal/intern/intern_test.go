package intern

import (
	"fmt"
	"sync"
	"testing"
)

func TestInternCanonical(t *testing.T) {
	var tab Table
	a := tab.Intern([]byte("riv-core-01"))
	b := tab.Intern([]byte("riv-core-01"))
	if a != "riv-core-01" || b != "riv-core-01" {
		t.Fatalf("Intern = %q, %q", a, b)
	}
	// Canonical: the two sightings share one backing string.
	if &a == &b {
		t.Fatal("comparing variables, not contents")
	}
	if got, want := tab.Len(), 1; got != want {
		t.Fatalf("Len = %d, want %d", got, want)
	}
	c := tab.InternString("riv-core-01")
	if c != a || tab.Len() != 1 {
		t.Fatalf("InternString diverged: %q, len %d", c, tab.Len())
	}
}

func TestInternZeroValueLookup(t *testing.T) {
	var tab Table
	if s, ok := tab.Lookup([]byte("absent")); ok {
		t.Fatalf("Lookup on empty table = %q, true", s)
	}
	tab.Intern([]byte("present"))
	if s, ok := tab.Lookup([]byte("present")); !ok || s != "present" {
		t.Fatalf("Lookup = %q, %v", s, ok)
	}
}

// TestInternGrowthAndPromotion drives the table through many
// insert/reread cycles and checks every symbol stays reachable across
// snapshot promotions (the growth behavior: overlay → snapshot merges
// must never drop or alias symbols).
func TestInternGrowthAndPromotion(t *testing.T) {
	var tab Table
	const n = 2048
	syms := make([]string, n)
	for i := range syms {
		syms[i] = fmt.Sprintf("symbol-%04d", i)
	}
	for i, s := range syms {
		got := tab.Intern([]byte(s))
		if got != s {
			t.Fatalf("Intern(%q) = %q", s, got)
		}
		// Reread a few earlier symbols to trip the promotion
		// heuristic at varying overlay sizes.
		for j := 0; j <= i; j += 97 {
			if got := tab.Intern([]byte(syms[j])); got != syms[j] {
				t.Fatalf("reread Intern(%q) = %q", syms[j], got)
			}
		}
	}
	if got := tab.Len(); got != n {
		t.Fatalf("Len = %d, want %d", got, n)
	}
	for _, s := range syms {
		if got, ok := tab.Lookup([]byte(s)); !ok || got != s {
			t.Fatalf("Lookup(%q) = %q, %v after growth", s, got, ok)
		}
	}
}

func TestInternLimit(t *testing.T) {
	tab := Table{Limit: 2}
	tab.Intern([]byte("a"))
	tab.Intern([]byte("b"))
	if got := tab.Intern([]byte("c")); got != "c" {
		t.Fatalf("Intern past limit = %q", got)
	}
	if got := tab.Len(); got != 2 {
		t.Fatalf("Len = %d, want 2 (limit must hold)", got)
	}
	if _, ok := tab.Lookup([]byte("c")); ok {
		t.Fatal("over-limit symbol was retained")
	}
	// Symbols under the limit still intern normally.
	if got := tab.Intern([]byte("a")); got != "a" {
		t.Fatalf("Intern under limit = %q", got)
	}
}

// TestInternConcurrentStress hammers one table from concurrent readers
// and writers; run under -race this is the data-race gate for the
// snapshot-publication scheme. Every goroutine checks it always reads
// the correct symbol for the bytes it asked about.
func TestInternConcurrentStress(t *testing.T) {
	var tab Table
	const (
		goroutines = 8
		rounds     = 2000
		vocab      = 128
	)
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			buf := make([]byte, 0, 16)
			for i := 0; i < rounds; i++ {
				// Overlapping vocabularies: every goroutine both
				// inserts fresh symbols and rereads others' symbols.
				sym := (i + g*vocab/goroutines) % vocab
				buf = append(buf[:0], "host-"...)
				buf = append(buf, byte('a'+sym%26), byte('a'+(sym/26)%26))
				want := string(buf)
				if got := tab.Intern(buf); got != want {
					errs <- fmt.Errorf("goroutine %d: Intern(%q) = %q", g, want, got)
					return
				}
				if got := tab.InternString(want); got != want {
					errs <- fmt.Errorf("goroutine %d: InternString(%q) = %q", g, want, got)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestInternWarmAllocBudget pins the warm path at zero allocations per
// lookup: once a symbol is in the published snapshot, Intern must be a
// map probe, not a conversion. Promotion is forced by rereading before
// measuring.
func TestInternWarmAllocBudget(t *testing.T) {
	var tab Table
	line := []byte("TenGigE0/1/0/3")
	tab.Intern(line)
	for i := 0; i < 4; i++ {
		tab.Intern(line) // trip promotion so the snapshot holds it
	}
	avg := testing.AllocsPerRun(100, func() {
		if s := tab.Intern(line); s == "" {
			t.Fatal("empty")
		}
	})
	if avg != 0 {
		t.Errorf("warm Intern allocates %.1f times per lookup, budget is 0", avg)
	}
	avg = testing.AllocsPerRun(100, func() {
		if s := tab.InternString("TenGigE0/1/0/3"); s == "" {
			t.Fatal("empty")
		}
	})
	if avg != 0 {
		t.Errorf("warm InternString allocates %.1f times per lookup, budget is 0", avg)
	}
}
