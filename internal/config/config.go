// Package config generates Cisco IOS-style router configuration files
// for a modeled network and — the part the paper's methodology
// depends on — mines an archive of such files back into the link
// namespace (hostname:port pairs, /31 subnets, IS-IS system IDs) that
// both the syslog and IS-IS reconstruction pipelines share (§3.4).
//
// The miner never sees the generating topology: it reconstructs
// everything from the config text, exactly as the original study had
// to, so generator and miner check each other.
package config

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"netfail/internal/topo"
)

// Revision is one archived configuration file for a router.
type Revision struct {
	// Captured is when the file was pulled from the device.
	Captured time.Time
	// Text is the full configuration body.
	Text string
}

// Archive is the config-file archive: every revision of every
// router's configuration, keyed by hostname. The paper's study mined
// 11,623 such files.
type Archive struct {
	Revisions map[string][]Revision
}

// NewArchive creates an empty archive.
func NewArchive() *Archive {
	return &Archive{Revisions: make(map[string][]Revision)}
}

// Add stores a revision, keeping the per-router list ordered by
// capture time.
func (a *Archive) Add(host string, rev Revision) {
	revs := append(a.Revisions[host], rev)
	sort.Slice(revs, func(i, j int) bool { return revs[i].Captured.Before(revs[j].Captured) })
	a.Revisions[host] = revs
}

// Latest returns the most recent revision for the router.
func (a *Archive) Latest(host string) (Revision, bool) {
	revs := a.Revisions[host]
	if len(revs) == 0 {
		return Revision{}, false
	}
	return revs[len(revs)-1], true
}

// Hosts returns the archived hostnames in sorted order.
func (a *Archive) Hosts() []string {
	hosts := make([]string, 0, len(a.Revisions))
	for h := range a.Revisions {
		hosts = append(hosts, h)
	}
	sort.Strings(hosts)
	return hosts
}

// FileCount returns the total number of archived files.
func (a *Archive) FileCount() int {
	total := 0
	for _, revs := range a.Revisions {
		total += len(revs)
	}
	return total
}

// Generate renders a configuration file for every router in the
// network, captured at the given time, into a fresh archive.
func Generate(n *topo.Network, captured time.Time) *Archive {
	a := NewArchive()
	for _, name := range n.RouterNames {
		a.Add(name, Revision{Captured: captured, Text: Render(n, n.Routers[name])})
	}
	return a
}

// GenerateArchive renders periodic configuration snapshots for every
// router over [start, end), one revision per interval — the shape of
// an operational config archive pulled on a schedule (the paper mined
// 11,623 files: roughly weekly pulls of 235 devices over 13 months).
func GenerateArchive(n *topo.Network, start, end time.Time, every time.Duration) *Archive {
	a := NewArchive()
	for _, name := range n.RouterNames {
		text := Render(n, n.Routers[name])
		for t := start; t.Before(end); t = t.Add(every) {
			a.Add(name, Revision{Captured: t, Text: text})
		}
	}
	return a
}

// Render produces the IOS-style configuration text for one router.
func Render(n *topo.Network, r *topo.Router) string {
	var b strings.Builder
	fmt.Fprintf(&b, "hostname %s\n!\n", r.Name)
	fmt.Fprintf(&b, "interface Loopback0\n ip address %s 255.255.255.255\n!\n", topo.FormatIPv4(r.Loopback))
	for _, ifc := range r.Interfaces {
		link, _ := n.LinkByID(ifc.Link)
		fmt.Fprintf(&b, "interface %s\n", ifc.Name)
		fmt.Fprintf(&b, " description %s\n", ifc.Description)
		fmt.Fprintf(&b, " ip address %s 255.255.255.254\n", topo.FormatIPv4(ifc.Addr))
		fmt.Fprintf(&b, " ip router isis cenic\n")
		if link != nil {
			fmt.Fprintf(&b, " isis metric %d level-2\n", link.Metric)
		}
		b.WriteString("!\n")
	}
	fmt.Fprintf(&b, "router isis cenic\n net %s\n is-type level-2-only\n metric-style wide\n hostname dynamic\n!\n",
		netAddress(r.SystemID))
	b.WriteString("logging host 10.0.0.100\nlogging trap notifications\n!\nend\n")
	return b.String()
}

// netAddress renders the OSI NET "49.0001.<sysid>.00" for a system ID.
func netAddress(id topo.SystemID) string {
	return "49.0001." + id.String() + ".00"
}

// parseNET extracts the system ID from a NET address.
func parseNET(net string) (topo.SystemID, error) {
	parts := strings.Split(net, ".")
	// 49.0001.xxxx.xxxx.xxxx.00
	if len(parts) != 6 || parts[5] != "00" {
		return topo.SystemID{}, fmt.Errorf("config: malformed NET %q", net)
	}
	return topo.ParseSystemID(strings.Join(parts[2:5], "."))
}
