package config

import (
	"testing"
	"time"

	"netfail/internal/topo"
)

func TestSaveLoadDirRoundTrip(t *testing.T) {
	n, err := topo.Generate(topo.DefaultSpec())
	if err != nil {
		t.Fatal(err)
	}
	a := Generate(n, captureTime)
	// Add an older revision for one router to exercise multi-revision.
	host := n.RouterNames[0]
	a.Add(host, Revision{Captured: captureTime.Add(-48 * time.Hour), Text: "hostname " + host + "\nrouter isis cenic\n net 49.0001.0000.0000.9999.00\n"})

	dir := t.TempDir()
	if err := a.SaveDir(dir); err != nil {
		t.Fatal(err)
	}
	back, err := LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if back.FileCount() != a.FileCount() {
		t.Fatalf("file count %d, want %d", back.FileCount(), a.FileCount())
	}
	for _, h := range a.Hosts() {
		want, _ := a.Latest(h)
		got, ok := back.Latest(h)
		if !ok || got.Text != want.Text {
			t.Errorf("latest revision for %s differs", h)
		}
		if !got.Captured.Equal(want.Captured) {
			t.Errorf("capture time for %s: %v != %v", h, got.Captured, want.Captured)
		}
	}
	// Mining the loaded archive must still work.
	mined, err := Mine(back)
	if err != nil {
		t.Fatal(err)
	}
	if len(mined.Network.Links) != len(n.Links) {
		t.Errorf("mined %d links, want %d", len(mined.Network.Links), len(n.Links))
	}
}

func TestLoadDirMissing(t *testing.T) {
	if _, err := LoadDir("/nonexistent-dir-xyz"); err == nil {
		t.Error("missing directory accepted")
	}
}

func TestGenerateArchiveWeekly(t *testing.T) {
	n, err := topo.Generate(topo.DefaultSpec())
	if err != nil {
		t.Fatal(err)
	}
	start := captureTime
	end := start.Add(28 * 24 * time.Hour)
	a := GenerateArchive(n, start, end, 7*24*time.Hour)
	// 4 weekly snapshots per router.
	if want := 4 * len(n.RouterNames); a.FileCount() != want {
		t.Errorf("files = %d, want %d", a.FileCount(), want)
	}
	if _, err := Mine(a); err != nil {
		t.Errorf("mining weekly archive: %v", err)
	}
}
