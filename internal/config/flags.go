package config

import (
	"flag"
	"fmt"
)

// This file is the shared CLI flag vocabulary: every netfail binary
// registers its common knobs through these helpers so the spelling,
// default, and help text of -parallelism, -debug-addr, -json,
// -strict/-lenient, and -trace never drift between commands. (It
// lives in the config package because that is the one internal
// package every binary already imports.)

// ParallelismFlag registers -parallelism: the analysis/simulation
// worker pool bound. 0 means one worker per CPU; 1 forces the
// sequential reference path. Every setting produces byte-identical
// output.
func ParallelismFlag(fs *flag.FlagSet) *int {
	return fs.Int("parallelism", 0,
		"worker pool size: 0 = one worker per CPU, 1 = sequential; output is byte-identical either way")
}

// DebugAddrFlag registers -debug-addr: the HTTP address serving the
// versioned /api/v1 surface (query endpoints, metrics, health) plus
// the pre-versioning /debug and probe aliases.
func DebugAddrFlag(fs *flag.FlagSet) *string {
	return fs.String("debug-addr", "",
		"serve the /api/v1 HTTP surface (metrics, health, store queries) and /debug aliases on this address")
}

// JSONFlag registers -json: machine-readable output instead of the
// rendered text form.
func JSONFlag(fs *flag.FlagSet) *bool {
	return fs.Bool("json", false, "emit JSON instead of rendered text")
}

// TraceFlag registers -trace: print the stage/worker span tree to
// stderr after the run.
func TraceFlag(fs *flag.FlagSet) *bool {
	return fs.Bool("trace", false, "print the stage/worker span tree to stderr after the run")
}

// TraceJSONFlag registers -trace-json: write the span tree as Chrome
// trace_event JSON.
func TraceJSONFlag(fs *flag.FlagSet) *string {
	return fs.String("trace-json", "", "write the span tree as Chrome trace_event JSON to this file")
}

// MetricsFlag registers -metrics: print pipeline counters to stderr
// after the run.
func MetricsFlag(fs *flag.FlagSet) *bool {
	return fs.Bool("metrics", false, "print pipeline counters to stderr after the run")
}

// ProgressFlag registers -progress: stream stage/shard progress
// events to stderr.
func ProgressFlag(fs *flag.FlagSet) *bool {
	return fs.Bool("progress", false, "stream stage/shard progress events to stderr")
}

// Strictness is the resolved -strict/-lenient pair. Binaries differ
// in which mode they default to (netfail-analyze refuses damage
// unless asked to salvage; the serving daemons salvage unless asked
// to refuse), but every binary accepts both spellings.
type Strictness struct {
	strict, lenient *bool
	defaultLenient  bool
}

// StrictnessFlags registers the -strict and -lenient pair with the
// given default mode.
func StrictnessFlags(fs *flag.FlagSet, defaultLenient bool) *Strictness {
	s := &Strictness{defaultLenient: defaultLenient}
	strictDefault, lenientDefault := "", " (the default)"
	if defaultLenient {
		strictDefault, lenientDefault = " (the default is lenient)", ""
	}
	s.strict = fs.Bool("strict", false,
		"abort on the first damaged record with an offset-accurate error"+strictDefault)
	s.lenient = fs.Bool("lenient", false,
		"salvage damaged records instead of aborting, accounting every skip"+lenientDefault)
	return s
}

// Lenient resolves the pair after flag parsing: an explicit flag
// wins, neither means the binary's default, both is an error.
func (s *Strictness) Lenient() (bool, error) {
	switch {
	case *s.strict && *s.lenient:
		return false, fmt.Errorf("-strict and -lenient are mutually exclusive")
	case *s.strict:
		return false, nil
	case *s.lenient:
		return true, nil
	}
	return s.defaultLenient, nil
}
