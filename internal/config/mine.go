package config

import (
	"fmt"
	"sort"
	"strings"

	"netfail/internal/topo"
)

// MinedInterface is one interface record recovered from a config.
type MinedInterface struct {
	Router      string
	Name        string
	Addr        uint32
	Mask        uint32
	Metric      uint32
	Description string
}

// MinedRouter is one device recovered from its latest config revision.
type MinedRouter struct {
	Name       string
	SystemID   topo.SystemID
	Loopback   uint32
	Interfaces []MinedInterface
}

// Mined is the result of mining an archive: the common link namespace
// of §3.4, reconstructed purely from configuration text.
type Mined struct {
	// Routers holds the parsed devices, keyed by hostname.
	Routers map[string]*MinedRouter
	// Network is the reconstructed topology: links are formed by
	// pairing interfaces that share a /31 subnet.
	Network *topo.Network
	// Unpaired lists interfaces whose /31 partner never appeared in
	// the archive (e.g. links to unmanaged equipment).
	Unpaired []MinedInterface
}

// Mine parses the latest revision of every archived config and
// reconstructs the network. Router class is inferred from the CENIC
// naming convention ("-core-" in the hostname).
func Mine(a *Archive) (*Mined, error) {
	m := &Mined{Routers: make(map[string]*MinedRouter)}
	for _, host := range a.Hosts() {
		rev, _ := a.Latest(host)
		r, err := parseConfig(rev.Text)
		if err != nil {
			return nil, fmt.Errorf("config: mining %s: %w", host, err)
		}
		if r.Name != host {
			return nil, fmt.Errorf("config: archive key %q but hostname line says %q", host, r.Name)
		}
		m.Routers[host] = r
	}

	net := topo.NewNetwork()
	for _, host := range sortedKeys(m.Routers) {
		r := m.Routers[host]
		class := topo.CPE
		if strings.Contains(r.Name, "-core-") {
			class = topo.Core
		}
		if err := net.AddRouter(&topo.Router{
			Name:     r.Name,
			Class:    class,
			SystemID: r.SystemID,
			Loopback: r.Loopback,
		}); err != nil {
			return nil, err
		}
	}

	// Pair interfaces by /31 subnet: the authoritative signal, with
	// descriptions only advisory (operators let them go stale).
	bySubnet := make(map[uint32][]MinedInterface)
	for _, host := range sortedKeys(m.Routers) {
		for _, ifc := range m.Routers[host].Interfaces {
			subnet := ifc.Addr &^ 1
			bySubnet[subnet] = append(bySubnet[subnet], ifc)
		}
	}
	subnets := make([]uint32, 0, len(bySubnet))
	for s := range bySubnet {
		subnets = append(subnets, s)
	}
	sort.Slice(subnets, func(i, j int) bool { return subnets[i] < subnets[j] })
	for _, subnet := range subnets {
		ifaces := bySubnet[subnet]
		if len(ifaces) != 2 {
			m.Unpaired = append(m.Unpaired, ifaces...)
			continue
		}
		a, b := ifaces[0], ifaces[1]
		metric := a.Metric
		if b.Metric > metric {
			metric = b.Metric
		}
		if _, err := net.AddLink(
			topo.Endpoint{Host: a.Router, Port: a.Name},
			topo.Endpoint{Host: b.Router, Port: b.Name},
			subnet, metric,
		); err != nil {
			return nil, fmt.Errorf("config: pairing subnet %s: %w", topo.FormatIPv4(subnet), err)
		}
	}
	m.Network = net
	return m, nil
}

func sortedKeys(m map[string]*MinedRouter) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// parseConfig walks one config file line by line, tracking interface
// blocks the way IOS "show running-config" output nests them.
func parseConfig(text string) (*MinedRouter, error) {
	r := &MinedRouter{}
	var cur *MinedInterface
	var inLoopback, inISIS bool

	flush := func() {
		if cur != nil && cur.Addr != 0 {
			r.Interfaces = append(r.Interfaces, *cur)
		}
		cur = nil
		inLoopback = false
	}

	for _, raw := range strings.Split(text, "\n") {
		line := strings.TrimRight(raw, " \t")
		indented := strings.HasPrefix(line, " ")
		trimmed := strings.TrimSpace(line)
		if trimmed == "" || trimmed == "!" {
			continue
		}
		if !indented {
			flush()
			inISIS = false
			switch {
			case strings.HasPrefix(trimmed, "hostname "):
				r.Name = strings.TrimPrefix(trimmed, "hostname ")
			case strings.HasPrefix(trimmed, "interface Loopback"):
				inLoopback = true
			case strings.HasPrefix(trimmed, "interface "):
				cur = &MinedInterface{Name: strings.TrimPrefix(trimmed, "interface ")}
			case strings.HasPrefix(trimmed, "router isis"):
				inISIS = true
			}
			continue
		}
		switch {
		case cur != nil:
			if err := parseInterfaceLine(cur, trimmed); err != nil {
				return nil, err
			}
		case inLoopback:
			if strings.HasPrefix(trimmed, "ip address ") {
				fields := strings.Fields(trimmed)
				if len(fields) >= 3 {
					addr, err := topo.ParseIPv4(fields[2])
					if err != nil {
						return nil, err
					}
					r.Loopback = addr
				}
			}
		case inISIS:
			if strings.HasPrefix(trimmed, "net ") {
				id, err := parseNET(strings.TrimPrefix(trimmed, "net "))
				if err != nil {
					return nil, err
				}
				r.SystemID = id
			}
		}
	}
	flush()
	if r.Name == "" {
		return nil, fmt.Errorf("config: no hostname line")
	}
	if r.SystemID.IsZero() {
		return nil, fmt.Errorf("config: %s: no IS-IS NET", r.Name)
	}
	for i := range r.Interfaces {
		r.Interfaces[i].Router = r.Name
	}
	return r, nil
}

func parseInterfaceLine(ifc *MinedInterface, line string) error {
	switch {
	case strings.HasPrefix(line, "description "):
		ifc.Description = strings.TrimPrefix(line, "description ")
	case strings.HasPrefix(line, "ip address "):
		fields := strings.Fields(line)
		if len(fields) < 4 {
			return fmt.Errorf("config: bad ip address line %q", line)
		}
		addr, err := topo.ParseIPv4(fields[2])
		if err != nil {
			return err
		}
		mask, err := topo.ParseIPv4(fields[3])
		if err != nil {
			return err
		}
		ifc.Addr, ifc.Mask = addr, mask
	case strings.HasPrefix(line, "isis metric "):
		fields := strings.Fields(line)
		if len(fields) >= 3 {
			var m uint32
			if _, err := fmt.Sscanf(fields[2], "%d", &m); err != nil {
				return fmt.Errorf("config: bad metric line %q", line)
			}
			ifc.Metric = m
		}
	}
	return nil
}
