package config

import (
	"strings"
	"testing"
	"time"

	"netfail/internal/topo"
)

var captureTime = time.Date(2010, time.October, 20, 0, 0, 0, 0, time.UTC)

func generated(t *testing.T) (*topo.Network, *Archive) {
	t.Helper()
	n, err := topo.Generate(topo.DefaultSpec())
	if err != nil {
		t.Fatal(err)
	}
	return n, Generate(n, captureTime)
}

func TestGenerateProducesFilePerRouter(t *testing.T) {
	n, a := generated(t)
	if a.FileCount() != len(n.RouterNames) {
		t.Errorf("files = %d, want %d", a.FileCount(), len(n.RouterNames))
	}
}

func TestRenderContainsEssentials(t *testing.T) {
	n, _ := generated(t)
	r := n.Routers[n.RouterNames[0]]
	text := Render(n, r)
	for _, want := range []string{
		"hostname " + r.Name,
		"router isis cenic",
		"net 49.0001." + r.SystemID.String() + ".00",
		"metric-style wide",
		"255.255.255.254", // /31 mask
		"logging host",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("config for %s missing %q", r.Name, want)
		}
	}
}

func TestMineRoundTripsTopology(t *testing.T) {
	n, a := generated(t)
	mined, err := Mine(a)
	if err != nil {
		t.Fatal(err)
	}
	if len(mined.Unpaired) != 0 {
		t.Errorf("unpaired interfaces: %d", len(mined.Unpaired))
	}
	// Same routers, same classes, same system IDs.
	if len(mined.Network.Routers) != len(n.Routers) {
		t.Fatalf("routers = %d, want %d", len(mined.Network.Routers), len(n.Routers))
	}
	for name, orig := range n.Routers {
		got, ok := mined.Network.Routers[name]
		if !ok {
			t.Fatalf("router %s lost in mining", name)
		}
		if got.SystemID != orig.SystemID {
			t.Errorf("%s system ID %v, want %v", name, got.SystemID, orig.SystemID)
		}
		if got.Class != orig.Class {
			t.Errorf("%s class %v, want %v", name, got.Class, orig.Class)
		}
		if got.Loopback != orig.Loopback {
			t.Errorf("%s loopback %v, want %v", name, got.Loopback, orig.Loopback)
		}
	}
	// Same link set with same subnets and metrics.
	if len(mined.Network.Links) != len(n.Links) {
		t.Fatalf("links = %d, want %d", len(mined.Network.Links), len(n.Links))
	}
	for _, orig := range n.Links {
		got, ok := mined.Network.LinkByID(orig.ID)
		if !ok {
			t.Errorf("link %s lost in mining", orig.ID)
			continue
		}
		if got.Subnet != orig.Subnet || got.Metric != orig.Metric || got.Class != orig.Class {
			t.Errorf("link %s mined as %+v, want %+v", orig.ID, got, orig)
		}
	}
	// Multi-link adjacencies must survive, since the analysis keys
	// its IS-reachability exclusions on them.
	if got, want := len(mined.Network.MultiLinkAdjacencies()), len(n.MultiLinkAdjacencies()); got != want {
		t.Errorf("multi-link adjacencies = %d, want %d", got, want)
	}
}

func TestMineUsesLatestRevision(t *testing.T) {
	n, a := generated(t)
	host := n.RouterNames[0]
	// An older, different revision must be ignored.
	a.Add(host, Revision{
		Captured: captureTime.Add(-24 * time.Hour),
		Text:     "hostname " + host + "\nrouter isis cenic\n net 49.0001.9999.9999.9999.00\n!\nend\n",
	})
	mined, err := Mine(a)
	if err != nil {
		t.Fatal(err)
	}
	want := n.Routers[host].SystemID
	if got := mined.Network.Routers[host].SystemID; got != want {
		t.Errorf("mined system ID %v, want %v (latest revision)", got, want)
	}
}

func TestMineDetectsHostnameMismatch(t *testing.T) {
	a := NewArchive()
	a.Add("router-a", Revision{Captured: captureTime, Text: "hostname router-b\nrouter isis cenic\n net 49.0001.0000.0000.0001.00\n"})
	if _, err := Mine(a); err == nil {
		t.Error("expected hostname mismatch error")
	}
}

func TestMineRejectsMissingNET(t *testing.T) {
	a := NewArchive()
	a.Add("r", Revision{Captured: captureTime, Text: "hostname r\n"})
	if _, err := Mine(a); err == nil {
		t.Error("expected missing-NET error")
	}
}

func TestMineUnpairedInterface(t *testing.T) {
	a := NewArchive()
	a.Add("r", Revision{Captured: captureTime, Text: strings.Join([]string{
		"hostname r",
		"interface GigabitEthernet0/0/0",
		" description to somewhere unmanaged",
		" ip address 192.0.2.0 255.255.255.254",
		" ip router isis cenic",
		"!",
		"router isis cenic",
		" net 49.0001.0000.0000.0001.00",
		"!",
	}, "\n")})
	mined, err := Mine(a)
	if err != nil {
		t.Fatal(err)
	}
	if len(mined.Unpaired) != 1 {
		t.Errorf("unpaired = %d, want 1", len(mined.Unpaired))
	}
	if len(mined.Network.Links) != 0 {
		t.Errorf("links = %d, want 0", len(mined.Network.Links))
	}
}

func TestParseNET(t *testing.T) {
	id, err := parseNET("49.0001.1921.6800.1042.00")
	if err != nil {
		t.Fatal(err)
	}
	if id.String() != "1921.6800.1042" {
		t.Errorf("id = %v", id)
	}
	for _, bad := range []string{"", "49.0001.1921.6800.1042.01", "49.0001.xxxx.yyyy.zzzz.00", "49.0001.00"} {
		if _, err := parseNET(bad); err == nil {
			t.Errorf("parseNET(%q) succeeded", bad)
		}
	}
}

func TestArchiveOrdering(t *testing.T) {
	a := NewArchive()
	late := Revision{Captured: captureTime.Add(time.Hour), Text: "late"}
	early := Revision{Captured: captureTime, Text: "early"}
	a.Add("r", late)
	a.Add("r", early)
	got, ok := a.Latest("r")
	if !ok || got.Text != "late" {
		t.Errorf("Latest = %+v", got)
	}
	if _, ok := a.Latest("missing"); ok {
		t.Error("Latest on missing host should report absence")
	}
}
