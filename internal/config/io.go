package config

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"
)

// revisionTimeLayout names archived files "<host>_20101020-150405.cfg".
const revisionTimeLayout = "20060102-150405"

// SaveDir writes the archive to a directory, one file per revision.
func (a *Archive) SaveDir(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("config: %w", err)
	}
	for host, revs := range a.Revisions {
		for _, rev := range revs {
			name := fmt.Sprintf("%s_%s.cfg", host, rev.Captured.UTC().Format(revisionTimeLayout))
			if err := os.WriteFile(filepath.Join(dir, name), []byte(rev.Text), 0o644); err != nil {
				return fmt.Errorf("config: %w", err)
			}
		}
	}
	return nil
}

// LoadDir reads an archive previously written by SaveDir. Filenames
// encode the hostname and capture time.
func LoadDir(dir string) (*Archive, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("config: %w", err)
	}
	a := NewArchive()
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".cfg") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	for _, name := range names {
		base := strings.TrimSuffix(name, ".cfg")
		us := strings.LastIndexByte(base, '_')
		if us < 0 {
			return nil, fmt.Errorf("config: malformed archive filename %q", name)
		}
		host := base[:us]
		captured, err := time.Parse(revisionTimeLayout, base[us+1:])
		if err != nil {
			return nil, fmt.Errorf("config: malformed archive filename %q: %v", name, err)
		}
		text, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			return nil, fmt.Errorf("config: %w", err)
		}
		a.Add(host, Revision{Captured: captured.UTC(), Text: string(text)})
	}
	return a, nil
}
