package device

import (
	"testing"
	"time"

	"netfail/internal/isis"
	"netfail/internal/syslog"
	"netfail/internal/topo"
)

func testNet(t *testing.T) *topo.Network {
	t.Helper()
	n := topo.NewNetwork()
	for i, name := range []string{"core-a", "core-b", "cpe-1"} {
		class := topo.Core
		if name == "cpe-1" {
			class = topo.CPE
		}
		if err := n.AddRouter(&topo.Router{
			Name: name, Class: class,
			SystemID: topo.SystemIDFromIndex(i + 1),
			Loopback: 10<<24 | uint32(i+1),
		}); err != nil {
			t.Fatal(err)
		}
	}
	mustLink := func(a, b topo.Endpoint, subnet uint32) {
		if _, err := n.AddLink(a, b, subnet, 10); err != nil {
			t.Fatal(err)
		}
	}
	mustLink(topo.Endpoint{Host: "core-a", Port: "Te0/0/0/0"}, topo.Endpoint{Host: "core-b", Port: "Te0/0/0/0"}, 0)
	mustLink(topo.Endpoint{Host: "core-a", Port: "Te0/0/0/1"}, topo.Endpoint{Host: "cpe-1", Port: "Gi0/0/0"}, 2)
	return n
}

func TestOriginateLSPHealthy(t *testing.T) {
	n := testNet(t)
	d := New(n, n.Routers["core-a"], syslog.DialectIOSXR)
	lsp := d.OriginateLSP()
	if lsp.Sequence != 1 {
		t.Errorf("sequence = %d, want 1", lsp.Sequence)
	}
	if lsp.Hostname != "core-a" {
		t.Errorf("hostname = %q", lsp.Hostname)
	}
	if len(lsp.Neighbors) != 2 {
		t.Fatalf("neighbors = %d, want 2", len(lsp.Neighbors))
	}
	// Loopback /32 plus two /31s.
	if len(lsp.Prefixes) != 3 {
		t.Fatalf("prefixes = %+v", lsp.Prefixes)
	}
	if lsp.Prefixes[0].Length != 32 || lsp.Prefixes[0].Addr != d.Info.Loopback {
		t.Errorf("first prefix should be the loopback: %+v", lsp.Prefixes[0])
	}
	// Wire round trip preserves everything.
	wire, err := lsp.Encode()
	if err != nil {
		t.Fatal(err)
	}
	var back isis.LSP
	if err := back.DecodeFromBytes(wire); err != nil {
		t.Fatal(err)
	}
	if len(back.Neighbors) != 2 || len(back.Prefixes) != 3 {
		t.Errorf("wire round trip lost content: %+v", back)
	}
}

func TestAdjacencyDownRemovesNeighborOnly(t *testing.T) {
	n := testNet(t)
	d := New(n, n.Routers["core-a"], syslog.DialectIOSXR)
	link := n.Links[0].ID // core-a <-> core-b
	if !d.SetAdjacency(link, false) {
		t.Fatal("SetAdjacency reported no change")
	}
	if d.SetAdjacency(link, false) {
		t.Error("repeated SetAdjacency should report no change")
	}
	lsp := d.OriginateLSP()
	if len(lsp.Neighbors) != 1 {
		t.Fatalf("neighbors = %d, want 1", len(lsp.Neighbors))
	}
	// Physical state untouched: both /31s still advertised.
	if len(lsp.Prefixes) != 3 {
		t.Errorf("prefixes = %d, want 3 (protocol failure keeps IP reachability)", len(lsp.Prefixes))
	}
	if !d.SetAdjacency(link, true) {
		t.Error("restore reported no change")
	}
	if got := len(d.OriginateLSP().Neighbors); got != 2 {
		t.Errorf("neighbors after restore = %d", got)
	}
}

func TestPhysicalDownWithdrawsPrefix(t *testing.T) {
	n := testNet(t)
	d := New(n, n.Routers["core-a"], syslog.DialectIOSXR)
	link := n.Links[1].ID // core-a <-> cpe-1
	d.SetPhysical(link, false)
	d.SetAdjacency(link, false)
	lsp := d.OriginateLSP()
	if len(lsp.Prefixes) != 2 {
		t.Errorf("prefixes = %+v, want loopback + one /31", lsp.Prefixes)
	}
	for _, p := range lsp.Prefixes {
		if p.Length == 31 && p.Addr == 2 {
			t.Error("failed link's /31 still advertised")
		}
	}
}

func TestSequenceIncrements(t *testing.T) {
	n := testNet(t)
	d := New(n, n.Routers["cpe-1"], syslog.DialectIOS)
	for want := uint32(1); want <= 5; want++ {
		if got := d.OriginateLSP().Sequence; got != want {
			t.Fatalf("sequence = %d, want %d", got, want)
		}
	}
	if d.LSPSequence() != 5 {
		t.Errorf("LSPSequence = %d", d.LSPSequence())
	}
}

func TestAdjMessageNamesPeerAndPort(t *testing.T) {
	n := testNet(t)
	d := New(n, n.Routers["cpe-1"], syslog.DialectIOS)
	link := n.Links[1].ID
	ts := time.Date(2011, 3, 1, 2, 3, 4, 0, time.UTC)
	m, err := d.AdjMessage(ts, link, false, "hold time expired")
	if err != nil {
		t.Fatal(err)
	}
	ev, err := syslog.ParseLinkEvent(m)
	if err != nil {
		t.Fatal(err)
	}
	if ev.Router != "cpe-1" || ev.Neighbor != "core-a" || ev.Interface != "Gi0/0/0" || ev.Up {
		t.Errorf("event = %+v", ev)
	}
	if m.Seq != 1 {
		t.Errorf("seq = %d", m.Seq)
	}
}

func TestLinkMessages(t *testing.T) {
	n := testNet(t)
	d := New(n, n.Routers["core-b"], syslog.DialectIOSXR)
	link := n.Links[0].ID
	ts := time.Date(2011, 3, 1, 2, 3, 4, 0, time.UTC)
	msgs, err := d.LinkMessages(ts, link, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(msgs) != 2 {
		t.Fatalf("messages = %d, want 2", len(msgs))
	}
	ev0, err := syslog.ParseLinkEvent(msgs[0])
	if err != nil {
		t.Fatal(err)
	}
	ev1, err := syslog.ParseLinkEvent(msgs[1])
	if err != nil {
		t.Fatal(err)
	}
	if ev0.Type != syslog.EventLink || ev1.Type != syslog.EventLineProto {
		t.Errorf("types = %v, %v", ev0.Type, ev1.Type)
	}
	if ev0.Interface != "Te0/0/0/0" {
		t.Errorf("interface = %q", ev0.Interface)
	}
}

func TestAdjMessageUnknownLink(t *testing.T) {
	n := testNet(t)
	d := New(n, n.Routers["core-a"], syslog.DialectIOSXR)
	if _, err := d.AdjMessage(time.Now(), topo.LinkID("bogus"), true, "x"); err == nil {
		t.Error("expected error for unknown link")
	}
	// A real link this router does not terminate.
	other := n.Links[1] // core-a actually terminates links[1] too; build one it doesn't
	dB := New(n, n.Routers["core-b"], syslog.DialectIOSXR)
	if _, err := dB.AdjMessage(time.Now(), other.ID, true, "x"); err == nil {
		t.Error("expected error for foreign link")
	}
}

func TestParallelLinksAdvertiseDuplicateNeighbors(t *testing.T) {
	n := testNet(t)
	// Add a second link between core-a and core-b.
	if _, err := n.AddLink(
		topo.Endpoint{Host: "core-a", Port: "Te0/0/0/2"},
		topo.Endpoint{Host: "core-b", Port: "Te0/0/0/2"}, 4, 10); err != nil {
		t.Fatal(err)
	}
	d := New(n, n.Routers["core-a"], syslog.DialectIOSXR)
	lsp := d.OriginateLSP()
	// core-b twice (two parallel links) + cpe-1 once.
	count := 0
	for _, nb := range lsp.Neighbors {
		if nb.System == n.Routers["core-b"].SystemID {
			count++
		}
	}
	if count != 2 {
		t.Errorf("parallel adjacency entries = %d, want 2", count)
	}
	// One goes down: still one entry left, so a set-based listener
	// cannot see the failure — the multi-link blindness of §3.4.
	d.SetAdjacency(n.Links[0].ID, false)
	lsp = d.OriginateLSP()
	count = 0
	for _, nb := range lsp.Neighbors {
		if nb.System == n.Routers["core-b"].SystemID {
			count++
		}
	}
	if count != 1 {
		t.Errorf("after one parallel down, entries = %d, want 1", count)
	}
}

func TestLinkMessagesUnknownLink(t *testing.T) {
	n := testNet(t)
	d := New(n, n.Routers["core-a"], syslog.DialectIOSXR)
	if _, err := d.LinkMessages(time.Now(), topo.LinkID("bogus"), false); err == nil {
		t.Error("unknown link accepted")
	}
}

func TestAdjacencyUpQuery(t *testing.T) {
	n := testNet(t)
	d := New(n, n.Routers["core-a"], syslog.DialectIOSXR)
	link := n.Links[0].ID
	if !d.AdjacencyUp(link) {
		t.Error("fresh device should have adjacency up")
	}
	d.SetAdjacency(link, false)
	if d.AdjacencyUp(link) {
		t.Error("adjacency should be down")
	}
}

func TestSetPhysicalIdempotent(t *testing.T) {
	n := testNet(t)
	d := New(n, n.Routers["core-a"], syslog.DialectIOSXR)
	link := n.Links[0].ID
	if !d.SetPhysical(link, false) || d.SetPhysical(link, false) {
		t.Error("SetPhysical change reporting wrong")
	}
	if !d.SetPhysical(link, true) || d.SetPhysical(link, true) {
		t.Error("SetPhysical restore reporting wrong")
	}
}
