// Package device models an IS-IS speaking router as the two
// observation channels see it: it tracks per-link adjacency and
// physical state, originates link-state PDUs reflecting that state
// (Extended IS Reachability for adjacencies, Extended IP Reachability
// for the /31 link subnets and the loopback), and formats the Cisco
// syslog messages a real device would emit on each transition.
package device

import (
	"fmt"
	"time"

	"netfail/internal/isis"
	"netfail/internal/syslog"
	"netfail/internal/topo"
)

// Router is one simulated device.
type Router struct {
	// Info is the underlying topology record.
	Info *topo.Router
	// Dialect selects the syslog message flavor (IOS vs IOS XR).
	Dialect syslog.Dialect

	// LinkIDCapable enables the RFC 5307 link-identifier sub-TLVs in
	// Extended IS Reachability entries, making parallel adjacencies
	// differentiable (the paper's footnote-1 extension, off by
	// default to match CENIC's deployment).
	LinkIDCapable bool

	net      *topo.Network
	lspSeq   uint32
	logSeq   uint64
	adjDown  map[topo.LinkID]bool
	physDown map[topo.LinkID]bool
}

// New creates a router with all links up.
func New(net *topo.Network, info *topo.Router, dialect syslog.Dialect) *Router {
	return &Router{
		Info:     info,
		Dialect:  dialect,
		net:      net,
		adjDown:  make(map[topo.LinkID]bool),
		physDown: make(map[topo.LinkID]bool),
	}
}

// SetAdjacency records the adjacency state for a link and reports
// whether it changed.
func (d *Router) SetAdjacency(link topo.LinkID, up bool) bool {
	if d.adjDown[link] == !up {
		return false
	}
	if up {
		delete(d.adjDown, link)
	} else {
		d.adjDown[link] = true
	}
	return true
}

// SetPhysical records the physical interface state for a link.
func (d *Router) SetPhysical(link topo.LinkID, up bool) bool {
	if d.physDown[link] == !up {
		return false
	}
	if up {
		delete(d.physDown, link)
	} else {
		d.physDown[link] = true
	}
	return true
}

// AdjacencyUp reports the current adjacency state for a link.
func (d *Router) AdjacencyUp(link topo.LinkID) bool { return !d.adjDown[link] }

// OriginateLSP builds this router's LSP from current state with the
// next sequence number. Parallel links to the same neighbor produce
// one IS-reachability entry per link — indistinguishable without the
// RFC 5305 link-ID sub-TLVs CENIC's devices do not run (paper §3.4,
// footnote 1).
func (d *Router) OriginateLSP() *isis.LSP {
	d.lspSeq++
	var neighbors []isis.ISNeighbor
	var prefixes []isis.IPPrefix
	prefixes = append(prefixes, isis.IPPrefix{Metric: 0, Addr: d.Info.Loopback, Length: 32})
	for _, ifc := range d.Info.Interfaces {
		link, ok := d.net.LinkByID(ifc.Link)
		if !ok {
			continue
		}
		peer, ok := link.Other(d.Info.Name)
		if !ok {
			continue
		}
		peerRouter := d.net.Routers[peer.Host]
		if peerRouter == nil {
			continue
		}
		if !d.adjDown[link.ID] {
			nbr := isis.ISNeighbor{
				System: peerRouter.SystemID,
				Metric: link.Metric,
			}
			if d.LinkIDCapable {
				// The link's unique /31 doubles as the circuit ID,
				// identical from both ends.
				nbr.SetLinkIDs(link.Subnet, link.Subnet)
			}
			neighbors = append(neighbors, nbr)
		}
		if !d.physDown[link.ID] {
			prefixes = append(prefixes, isis.IPPrefix{
				Metric: link.Metric,
				Addr:   link.Subnet,
				Length: 31,
			})
		}
	}
	return isis.NewLSP(d.Info.SystemID, d.lspSeq, d.Info.Name, neighbors, prefixes)
}

// LSPSequence returns the last originated sequence number.
func (d *Router) LSPSequence() uint32 { return d.lspSeq }

// AdjMessage formats the IS-IS adjacency-change syslog message for a
// transition on the given link.
func (d *Router) AdjMessage(ts time.Time, link topo.LinkID, up bool, reason string) (*syslog.Message, error) {
	l, ok := d.net.LinkByID(link)
	if !ok {
		return nil, fmt.Errorf("device: %s has no link %s", d.Info.Name, link)
	}
	peer, ok := l.Other(d.Info.Name)
	if !ok {
		return nil, fmt.Errorf("device: %s is not an endpoint of %s", d.Info.Name, link)
	}
	iface := d.localPort(l)
	d.logSeq++
	// Collectors record millisecond resolution; quantize here so
	// captures serialize losslessly.
	ts = ts.Truncate(time.Millisecond)
	return syslog.AdjChange(d.Dialect, d.Info.Name, d.logSeq, ts, peer.Host, iface, up, reason), nil
}

// LinkMessages formats the physical-media syslog messages (%LINK and
// %LINEPROTO) for a physical transition on the given link.
func (d *Router) LinkMessages(ts time.Time, link topo.LinkID, up bool) ([]*syslog.Message, error) {
	l, ok := d.net.LinkByID(link)
	if !ok {
		return nil, fmt.Errorf("device: %s has no link %s", d.Info.Name, link)
	}
	iface := d.localPort(l)
	d.logSeq++
	ts = ts.Truncate(time.Millisecond)
	m1 := syslog.LinkUpDown(d.Info.Name, d.logSeq, ts, iface, up)
	d.logSeq++
	m2 := syslog.LineProtoUpDown(d.Info.Name, d.logSeq, ts.Add(50*time.Millisecond), iface, up)
	return []*syslog.Message{m1, m2}, nil
}

// localPort returns this router's interface name on the link.
func (d *Router) localPort(l *topo.Link) string {
	if l.A.Host == d.Info.Name {
		return l.A.Port
	}
	return l.B.Port
}
