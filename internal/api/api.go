// Package api is the versioned HTTP query surface shared by
// netfail-serve, netfail-query serve, and netfail-listener: every
// /api/v1 endpoint speaks JSON, reports failures through one error
// envelope, honors per-request cancellation, and sits next to the
// pre-versioning debug paths, which remain mounted as back-compat
// aliases.
//
// The surface is read-only by construction — the store is written
// once at the end of an analysis run and queried forever after, so
// every endpoint is GET (HEAD is accepted and returns headers only,
// per net/http's automatic handling).
package api

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"netfail/internal/obs"
	"netfail/internal/store"
	"netfail/internal/topo"
	"netfail/internal/trace"
)

// Options wires the mux's data sources. Any field may be nil: a nil
// Registry drops the metrics endpoints, a nil Store makes the query
// endpoints answer 404 no_store (the daemon may be serving live
// without an attached store), nil Ready/Healthz report a flat 200.
type Options struct {
	// Registry backs /api/v1/metrics and the /debug aliases.
	Registry *obs.Registry
	// Store backs the query endpoints.
	Store *store.Store
	// Ready is the readiness probe (nil means always ready).
	Ready http.Handler
	// Healthz is the liveness probe (nil means always healthy).
	Healthz http.Handler
}

// NewMux builds the versioned API mux:
//
//	GET /api/v1/links
//	GET /api/v1/failures    ?link&source&from&to&limit
//	GET /api/v1/transitions ?link&stream&dir&kind&reporter&from&to&limit
//	GET /api/v1/messages    ?host&contains&from&to&limit
//	GET /api/v1/flaps       ?source&link&from&to
//	GET /api/v1/tables/{n}
//	GET /api/v1/store
//	GET /api/v1/metrics
//	GET /api/v1/health
//	GET /api/v1/ready
//
// plus the pre-versioning aliases /debug/vars, /debug/netfail,
// /debug/pprof/*, /healthz, and /ready. Errors are always the shared
// envelope {"error":{"code":..., "message":...}}.
func NewMux(o Options) *http.ServeMux {
	var mux *http.ServeMux
	if o.Registry != nil {
		mux = obs.DebugMux(o.Registry)
	} else {
		mux = http.NewServeMux()
	}

	get := func(pattern string, h http.HandlerFunc) {
		mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
			if r.Method != http.MethodGet && r.Method != http.MethodHead {
				w.Header().Set("Allow", "GET, HEAD")
				writeError(w, http.StatusMethodNotAllowed, "method_not_allowed",
					fmt.Sprintf("%s is read-only: use GET", r.URL.Path))
				return
			}
			h(w, r)
		})
	}
	withStore := func(h func(*store.Store, http.ResponseWriter, *http.Request)) http.HandlerFunc {
		return func(w http.ResponseWriter, r *http.Request) {
			if o.Store == nil {
				writeError(w, http.StatusNotFound, "no_store",
					"no failure store attached to this endpoint")
				return
			}
			h(o.Store, w, r)
		}
	}

	get("/api/v1/links", withStore(handleLinks))
	get("/api/v1/failures", withStore(handleFailures))
	get("/api/v1/transitions", withStore(handleTransitions))
	get("/api/v1/messages", withStore(handleMessages))
	get("/api/v1/flaps", withStore(handleFlaps))
	get("/api/v1/tables/{n}", withStore(handleTable))
	get("/api/v1/store", withStore(handleStore))

	get("/api/v1/metrics", func(w http.ResponseWriter, r *http.Request) {
		if o.Registry == nil {
			writeError(w, http.StatusNotFound, "no_metrics", "no metrics registry attached")
			return
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		fmt.Fprint(w, o.Registry.String())
	})
	probe := func(h http.Handler) http.HandlerFunc {
		return func(w http.ResponseWriter, r *http.Request) {
			if h != nil {
				h.ServeHTTP(w, r)
				return
			}
			fmt.Fprintln(w, "ok")
		}
	}
	get("/api/v1/health", probe(o.Healthz))
	get("/api/v1/ready", probe(o.Ready))
	// Pre-versioning spellings, kept as aliases (the /debug tree is
	// mounted by obs.DebugMux above when a registry is attached).
	get("/healthz", probe(o.Healthz))
	get("/ready", probe(o.Ready))
	return mux
}

// errorBody is the shared error envelope.
type errorBody struct {
	Error struct {
		Code    string `json:"code"`
		Message string `json:"message"`
	} `json:"error"`
}

func writeError(w http.ResponseWriter, status int, code, msg string) {
	var body errorBody
	body.Error.Code = code
	body.Error.Message = msg
	writeJSON(w, status, body)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		return // client went away; headers are already out
	}
}

// queryError maps a store query failure onto the envelope: a canceled
// or timed-out request is the client's doing, anything else is the
// store's.
func queryError(w http.ResponseWriter, r *http.Request, err error) {
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) ||
		r.Context().Err() != nil {
		writeError(w, http.StatusServiceUnavailable, "canceled", "request canceled")
		return
	}
	writeError(w, http.StatusInternalServerError, "store_error", err.Error())
}

// badParam writes the envelope for a malformed query parameter.
func badParam(w http.ResponseWriter, name string, err error) {
	writeError(w, http.StatusBadRequest, "bad_param",
		fmt.Sprintf("parameter %q: %v", name, err))
}

// queryOptions translates the shared filter parameters into store
// query options. The boolean reports whether parsing succeeded (the
// envelope is already written otherwise).
func queryOptions(w http.ResponseWriter, r *http.Request) ([]store.Option, bool) {
	q := r.URL.Query()
	var opts []store.Option
	if v := q.Get("link"); v != "" {
		opts = append(opts, store.WithLink(topo.LinkID(v)))
	}
	if v := q.Get("source"); v != "" {
		src, err := store.ParseSource(v)
		if err != nil {
			badParam(w, "source", err)
			return nil, false
		}
		opts = append(opts, store.WithSource(src))
	}
	if v := q.Get("stream"); v != "" {
		st, err := store.ParseStream(v)
		if err != nil {
			badParam(w, "stream", err)
			return nil, false
		}
		opts = append(opts, store.WithStream(st))
	}
	if v := q.Get("dir"); v != "" {
		switch v {
		case "down":
			opts = append(opts, store.WithDirection(trace.Down))
		case "up":
			opts = append(opts, store.WithDirection(trace.Up))
		default:
			badParam(w, "dir", fmt.Errorf("want \"down\" or \"up\", got %q", v))
			return nil, false
		}
	}
	if v := q.Get("kind"); v != "" {
		k, err := trace.ParseKind(v)
		if err != nil {
			badParam(w, "kind", err)
			return nil, false
		}
		opts = append(opts, store.WithKind(k))
	}
	if v := q.Get("reporter"); v != "" {
		opts = append(opts, store.WithReporter(v))
	}
	if v := q.Get("host"); v != "" {
		opts = append(opts, store.WithHost(v))
	}
	if v := q.Get("contains"); v != "" {
		opts = append(opts, store.WithContains(v))
	}
	if v := q.Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			badParam(w, "limit", fmt.Errorf("want a non-negative integer, got %q", v))
			return nil, false
		}
		opts = append(opts, store.WithLimit(n))
	}
	from, to := q.Get("from"), q.Get("to")
	switch {
	case from != "" && to != "":
		ft, err := time.Parse(time.RFC3339, from)
		if err != nil {
			badParam(w, "from", err)
			return nil, false
		}
		tt, err := time.Parse(time.RFC3339, to)
		if err != nil {
			badParam(w, "to", err)
			return nil, false
		}
		if !ft.Before(tt) {
			badParam(w, "to", fmt.Errorf("window end %s is not after start %s", to, from))
			return nil, false
		}
		opts = append(opts, store.WithWindow(ft, tt))
	case from != "" || to != "":
		name := "from"
		if to != "" {
			name = "to"
		}
		badParam(w, name, errors.New("from and to must be given together (RFC 3339)"))
		return nil, false
	}
	return opts, true
}

// Wire shapes. Enumerations travel as their string names, never their
// storage ordinals — the JSON surface is versioned, the binary format
// is not part of it.

type linkJSON struct {
	ID    string `json:"id"`
	Class string `json:"class"`
}

type failureJSON struct {
	Source string    `json:"source"`
	Link   string    `json:"link"`
	Start  time.Time `json:"start"`
	End    time.Time `json:"end"`
}

type transitionJSON struct {
	Stream   string    `json:"stream"`
	Time     time.Time `json:"time"`
	Link     string    `json:"link"`
	Dir      string    `json:"dir"`
	Kind     string    `json:"kind"`
	Reporter string    `json:"reporter"`
}

type messageJSON struct {
	Time time.Time `json:"time"`
	Host string    `json:"host"`
	Line string    `json:"line"`
}

type episodeJSON struct {
	Link     string        `json:"link"`
	Start    time.Time     `json:"start"`
	End      time.Time     `json:"end"`
	Flap     bool          `json:"flap"`
	Failures []failureJSON `json:"failures"`
}

// FailureJSON converts a stored failure to its wire shape. Exported
// for netfail-query, which renders the same JSON from the Go API.
func FailureJSON(r store.FailureRecord) any {
	return failureJSON{Source: r.Source.String(), Link: string(r.Link), Start: r.Start, End: r.End}
}

// TransitionJSON converts a stored transition to its wire shape.
func TransitionJSON(r store.TransitionRecord) any {
	return transitionJSON{
		Stream: r.Stream.String(), Time: r.Time, Link: string(r.Link),
		Dir: r.Dir.String(), Kind: r.Kind.String(), Reporter: r.Reporter,
	}
}

// MessageJSON converts a stored message to its wire shape.
func MessageJSON(r store.MessageRecord) any {
	return messageJSON{Time: r.Time, Host: r.Host, Line: r.Line}
}

// EpisodeJSON converts a flap episode (with its source) to its wire
// shape.
func EpisodeJSON(src store.Source, e trace.Episode) any {
	out := episodeJSON{
		Link:  string(e.Link),
		Start: e.Start(), End: e.End(),
		Flap:     e.IsFlap(),
		Failures: make([]failureJSON, len(e.Failures)),
	}
	for i, f := range e.Failures {
		out.Failures[i] = failureJSON{Source: src.String(), Link: string(f.Link), Start: f.Start, End: f.End}
	}
	return out
}

func handleLinks(s *store.Store, w http.ResponseWriter, r *http.Request) {
	links, err := s.Links(r.Context())
	if err != nil {
		queryError(w, r, err)
		return
	}
	out := make([]linkJSON, len(links))
	for i, l := range links {
		out[i] = linkJSON{ID: string(l.ID), Class: l.Class.String()}
	}
	writeJSON(w, http.StatusOK, map[string]any{"links": out, "count": len(out)})
}

func handleFailures(s *store.Store, w http.ResponseWriter, r *http.Request) {
	opts, ok := queryOptions(w, r)
	if !ok {
		return
	}
	recs, err := s.Failures(r.Context(), opts...)
	if err != nil {
		queryError(w, r, err)
		return
	}
	out := make([]any, len(recs))
	for i, rec := range recs {
		out[i] = FailureJSON(rec)
	}
	writeJSON(w, http.StatusOK, map[string]any{"failures": out, "count": len(out)})
}

func handleTransitions(s *store.Store, w http.ResponseWriter, r *http.Request) {
	opts, ok := queryOptions(w, r)
	if !ok {
		return
	}
	recs, err := s.Transitions(r.Context(), opts...)
	if err != nil {
		queryError(w, r, err)
		return
	}
	out := make([]any, len(recs))
	for i, rec := range recs {
		out[i] = TransitionJSON(rec)
	}
	writeJSON(w, http.StatusOK, map[string]any{"transitions": out, "count": len(out)})
}

func handleMessages(s *store.Store, w http.ResponseWriter, r *http.Request) {
	opts, ok := queryOptions(w, r)
	if !ok {
		return
	}
	recs, err := s.Messages(r.Context(), opts...)
	if err != nil {
		queryError(w, r, err)
		return
	}
	out := make([]any, len(recs))
	for i, rec := range recs {
		out[i] = MessageJSON(rec)
	}
	writeJSON(w, http.StatusOK, map[string]any{"messages": out, "count": len(out)})
}

func handleFlaps(s *store.Store, w http.ResponseWriter, r *http.Request) {
	srcParam := r.URL.Query().Get("source")
	if srcParam == "" {
		badParam(w, "source", errors.New("required: \"syslog\" or \"isis\""))
		return
	}
	src, err := store.ParseSource(srcParam)
	if err != nil {
		badParam(w, "source", err)
		return
	}
	opts, ok := queryOptions(w, r)
	if !ok {
		return
	}
	eps, err := s.Flaps(r.Context(), src, opts...)
	if err != nil {
		queryError(w, r, err)
		return
	}
	out := make([]any, len(eps))
	for i, e := range eps {
		out[i] = EpisodeJSON(src, e)
	}
	writeJSON(w, http.StatusOK, map[string]any{"episodes": out, "count": len(out)})
}

func handleTable(s *store.Store, w http.ResponseWriter, r *http.Request) {
	n, err := strconv.Atoi(r.PathValue("n"))
	if err != nil {
		badParam(w, "n", fmt.Errorf("want a table number, got %q", r.PathValue("n")))
		return
	}
	table, err := s.Table(n)
	if err != nil {
		writeError(w, http.StatusNotFound, "no_such_table", err.Error())
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"table": n, "data": table})
}

// handleStore summarizes the opened store: the manifest's campaign
// metadata and record counts, plus any salvage accumulated so far when
// the store is lenient.
func handleStore(s *store.Store, w http.ResponseWriter, r *http.Request) {
	man := s.Manifest()
	out := map[string]any{
		"format":  man.Format,
		"seed":    man.Seed,
		"start":   man.Start,
		"end":     man.End,
		"links":   len(man.Links),
		"hosts":   len(man.Hosts),
		"lenient": s.Lenient(),
		"records": map[string]int64{
			"failures":    man.Failures.Records,
			"transitions": man.Transitions.Records,
			"messages":    messageRecords(man),
		},
	}
	if s.Lenient() {
		salv := map[string]string{}
		for _, cs := range s.Salvage() {
			salv[cs.Name] = cs.Report.String()
		}
		out["salvage"] = salv
	}
	writeJSON(w, http.StatusOK, out)
}

func messageRecords(man *store.Manifest) int64 {
	var n int64
	for _, m := range man.Messages {
		n += m.Records
	}
	return n
}
