package api_test

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"netfail"
	"netfail/internal/api"
	"netfail/internal/obs"
	"netfail/internal/store"
	"netfail/internal/topo"
	"netfail/internal/trace"
)

// buildTestStore runs one small campaign into a store — the API is a
// thin skin over the store, so the fixtures come from the real
// pipeline, not hand-built segments.
func buildTestStore(t *testing.T) *store.Store {
	t.Helper()
	dir := t.TempDir()
	cfg := netfail.SimulationConfig{
		Seed: 4,
		Spec: topo.Spec{
			Seed: 4, CoreRouters: 10, CPERouters: 20, CoreChords: 2,
			DualHomedCPE: 4, MultiLinkCorePairs: 1, MultiLinkCPEPairs: 2,
			Customers: 15, LinkBase: 137<<24 | 164<<16, CoreMetric: 10, CPEMetric: 100,
		},
		Start:           time.Date(2011, 1, 1, 0, 0, 0, 0, time.UTC),
		End:             time.Date(2011, 2, 15, 0, 0, 0, 0, time.UTC),
		ListenerOffline: []trace.Interval{},
	}
	if _, err := netfail.Run(context.Background(), cfg, netfail.WithStoreDir(dir)); err != nil {
		t.Fatal(err)
	}
	s, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func get(t *testing.T, srv *httptest.Server, path string) (int, []byte) {
	t.Helper()
	resp, err := srv.Client().Get(srv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body
}

// decodeEnvelope asserts a response is the shared error envelope and
// returns its code.
func decodeEnvelope(t *testing.T, body []byte) string {
	t.Helper()
	var env struct {
		Error struct {
			Code    string `json:"code"`
			Message string `json:"message"`
		} `json:"error"`
	}
	if err := json.Unmarshal(body, &env); err != nil {
		t.Fatalf("response is not the error envelope: %v\n%s", err, body)
	}
	if env.Error.Code == "" || env.Error.Message == "" {
		t.Fatalf("envelope missing code or message: %s", body)
	}
	return env.Error.Code
}

func TestAPIQueryEndpoints(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign simulation in -short mode")
	}
	s := buildTestStore(t)
	srv := httptest.NewServer(api.NewMux(api.Options{Store: s}))
	defer srv.Close()

	t.Run("links", func(t *testing.T) {
		code, body := get(t, srv, "/api/v1/links")
		if code != http.StatusOK {
			t.Fatalf("status %d: %s", code, body)
		}
		var out struct {
			Links []struct{ ID, Class string } `json:"links"`
			Count int                          `json:"count"`
		}
		if err := json.Unmarshal(body, &out); err != nil {
			t.Fatal(err)
		}
		if out.Count == 0 || out.Count != len(out.Links) {
			t.Errorf("count %d, links %d", out.Count, len(out.Links))
		}
		if out.Links[0].ID == "" || out.Links[0].Class == "" {
			t.Errorf("empty link entry: %+v", out.Links[0])
		}
	})

	t.Run("failures match the store", func(t *testing.T) {
		code, body := get(t, srv, "/api/v1/failures?source=isis&limit=5")
		if code != http.StatusOK {
			t.Fatalf("status %d: %s", code, body)
		}
		var out struct {
			Failures []struct {
				Source string    `json:"source"`
				Link   string    `json:"link"`
				Start  time.Time `json:"start"`
				End    time.Time `json:"end"`
			} `json:"failures"`
			Count int `json:"count"`
		}
		if err := json.Unmarshal(body, &out); err != nil {
			t.Fatal(err)
		}
		want, err := s.Failures(context.Background(),
			store.WithSource(store.SourceISIS), store.WithLimit(5))
		if err != nil {
			t.Fatal(err)
		}
		if out.Count != len(want) || len(out.Failures) != len(want) {
			t.Fatalf("got %d failures, want %d", out.Count, len(want))
		}
		for i, f := range out.Failures {
			if f.Source != "isis" || f.Link != string(want[i].Link) ||
				!f.Start.Equal(want[i].Start) || !f.End.Equal(want[i].End) {
				t.Errorf("failure %d: %+v vs %+v", i, f, want[i])
			}
		}
	})

	t.Run("transitions enums as strings", func(t *testing.T) {
		code, body := get(t, srv, "/api/v1/transitions?stream=is-reach&dir=down&limit=3")
		if code != http.StatusOK {
			t.Fatalf("status %d: %s", code, body)
		}
		var out struct {
			Transitions []map[string]any `json:"transitions"`
			Count       int              `json:"count"`
		}
		if err := json.Unmarshal(body, &out); err != nil {
			t.Fatal(err)
		}
		if out.Count == 0 {
			t.Fatal("no transitions matched")
		}
		for _, tr := range out.Transitions {
			if tr["stream"] != "is-reach" || tr["dir"] != "down" {
				t.Errorf("filter ignored or enum not a string: %v", tr)
			}
			if _, ok := tr["kind"].(string); !ok {
				t.Errorf("kind is not a string: %v", tr["kind"])
			}
		}
	})

	t.Run("messages window", func(t *testing.T) {
		path := "/api/v1/messages?from=2011-01-10T00:00:00Z&to=2011-01-11T00:00:00Z&limit=10"
		code, body := get(t, srv, path)
		if code != http.StatusOK {
			t.Fatalf("status %d: %s", code, body)
		}
		var out struct {
			Messages []struct {
				Time time.Time `json:"time"`
				Host string    `json:"host"`
				Line string    `json:"line"`
			} `json:"messages"`
			Count int `json:"count"`
		}
		if err := json.Unmarshal(body, &out); err != nil {
			t.Fatal(err)
		}
		from := time.Date(2011, 1, 10, 0, 0, 0, 0, time.UTC)
		to := from.AddDate(0, 0, 1)
		for _, m := range out.Messages {
			if m.Time.Before(from) || !m.Time.Before(to) {
				t.Errorf("message outside window: %v", m.Time)
			}
			if m.Host == "" || m.Line == "" {
				t.Errorf("empty message fields: %+v", m)
			}
		}
	})

	t.Run("flaps require source", func(t *testing.T) {
		code, body := get(t, srv, "/api/v1/flaps")
		if code != http.StatusBadRequest || decodeEnvelope(t, body) != "bad_param" {
			t.Errorf("status %d, body %s", code, body)
		}
		code, body = get(t, srv, "/api/v1/flaps?source=syslog")
		if code != http.StatusOK {
			t.Fatalf("status %d: %s", code, body)
		}
		var out struct {
			Episodes []struct {
				Link string `json:"link"`
				Flap bool   `json:"flap"`
			} `json:"episodes"`
			Count int `json:"count"`
		}
		if err := json.Unmarshal(body, &out); err != nil {
			t.Fatal(err)
		}
		if out.Count == 0 {
			t.Error("no flap episodes in a six-week campaign")
		}
	})

	t.Run("tables", func(t *testing.T) {
		for n := 1; n <= 7; n++ {
			code, body := get(t, srv, "/api/v1/tables/"+string(rune('0'+n)))
			if code != http.StatusOK {
				t.Fatalf("table %d: status %d: %s", n, code, body)
			}
			var out struct {
				Table int             `json:"table"`
				Data  json.RawMessage `json:"data"`
			}
			if err := json.Unmarshal(body, &out); err != nil {
				t.Fatal(err)
			}
			if out.Table != n || len(out.Data) < 3 {
				t.Errorf("table %d: %s", n, body)
			}
		}
		code, body := get(t, srv, "/api/v1/tables/8")
		if code != http.StatusNotFound || decodeEnvelope(t, body) != "no_such_table" {
			t.Errorf("table 8: status %d, body %s", code, body)
		}
		code, body = get(t, srv, "/api/v1/tables/x")
		if code != http.StatusBadRequest || decodeEnvelope(t, body) != "bad_param" {
			t.Errorf("table x: status %d, body %s", code, body)
		}
	})

	t.Run("store summary", func(t *testing.T) {
		code, body := get(t, srv, "/api/v1/store")
		if code != http.StatusOK {
			t.Fatalf("status %d: %s", code, body)
		}
		var out struct {
			Format  string `json:"format"`
			Seed    int64  `json:"seed"`
			Lenient bool   `json:"lenient"`
			Records map[string]int64
		}
		if err := json.Unmarshal(body, &out); err != nil {
			t.Fatal(err)
		}
		if out.Format != "NFSTORE1" || out.Seed != 4 || out.Lenient {
			t.Errorf("store summary: %s", body)
		}
	})

	t.Run("bad params", func(t *testing.T) {
		cases := []string{
			"/api/v1/failures?source=telepathy",
			"/api/v1/failures?limit=-1",
			"/api/v1/failures?limit=many",
			"/api/v1/failures?from=2011-01-10T00:00:00Z",
			"/api/v1/failures?from=yesterday&to=today",
			"/api/v1/failures?from=2011-01-11T00:00:00Z&to=2011-01-10T00:00:00Z",
			"/api/v1/transitions?stream=smoke-signal",
			"/api/v1/transitions?dir=sideways",
			"/api/v1/transitions?kind=vibes",
		}
		for _, path := range cases {
			code, body := get(t, srv, path)
			if code != http.StatusBadRequest {
				t.Errorf("%s: status %d, want 400", path, code)
				continue
			}
			if got := decodeEnvelope(t, body); got != "bad_param" {
				t.Errorf("%s: envelope code %q", path, got)
			}
		}
	})

	t.Run("method not allowed", func(t *testing.T) {
		resp, err := srv.Client().Post(srv.URL+"/api/v1/failures", "application/json", strings.NewReader("{}"))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Fatalf("status %d, want 405", resp.StatusCode)
		}
		if allow := resp.Header.Get("Allow"); !strings.Contains(allow, "GET") {
			t.Errorf("Allow header %q", allow)
		}
		if decodeEnvelope(t, body) != "method_not_allowed" {
			t.Errorf("body %s", body)
		}
	})

	t.Run("health and ready with aliases", func(t *testing.T) {
		for _, path := range []string{"/api/v1/health", "/api/v1/ready", "/healthz", "/ready"} {
			code, body := get(t, srv, path)
			if code != http.StatusOK || !strings.Contains(string(body), "ok") {
				t.Errorf("%s: status %d, body %q", path, code, body)
			}
		}
	})
}

func TestAPIWithoutStoreOrRegistry(t *testing.T) {
	srv := httptest.NewServer(api.NewMux(api.Options{}))
	defer srv.Close()

	for _, path := range []string{
		"/api/v1/links", "/api/v1/failures", "/api/v1/transitions",
		"/api/v1/messages", "/api/v1/flaps", "/api/v1/tables/4", "/api/v1/store",
	} {
		code, body := get(t, srv, path)
		if code != http.StatusNotFound {
			t.Errorf("%s: status %d, want 404", path, code)
			continue
		}
		if got := decodeEnvelope(t, body); got != "no_store" {
			t.Errorf("%s: envelope code %q", path, got)
		}
	}

	code, body := get(t, srv, "/api/v1/metrics")
	if code != http.StatusNotFound || decodeEnvelope(t, body) != "no_metrics" {
		t.Errorf("/api/v1/metrics: status %d, body %s", code, body)
	}
	// Probes stay green even with nothing attached.
	if code, _ := get(t, srv, "/api/v1/health"); code != http.StatusOK {
		t.Errorf("health: status %d", code)
	}
}

func TestAPIMetricsAndDebugAliases(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("test.counter").Add(3)
	srv := httptest.NewServer(api.NewMux(api.Options{Registry: reg}))
	defer srv.Close()

	code, body := get(t, srv, "/api/v1/metrics")
	if code != http.StatusOK {
		t.Fatalf("metrics: status %d", code)
	}
	var counters map[string]any
	if err := json.Unmarshal(body, &counters); err != nil {
		t.Fatalf("metrics are not JSON: %v\n%s", err, body)
	}
	if counters["test.counter"] != float64(3) {
		t.Errorf("counter missing: %v", counters)
	}

	// The pre-versioning debug tree stays mounted.
	code, _ = get(t, srv, "/debug/netfail")
	if code != http.StatusOK {
		t.Errorf("/debug/netfail alias: status %d", code)
	}
}

func TestAPICancellation(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign simulation in -short mode")
	}
	s := buildTestStore(t)
	mux := api.NewMux(api.Options{Store: s})

	req := httptest.NewRequest(http.MethodGet, "/api/v1/failures", nil)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, req.WithContext(ctx))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("canceled request: status %d, want 503", rec.Code)
	}
	if got := decodeEnvelope(t, rec.Body.Bytes()); got != "canceled" {
		t.Errorf("envelope code %q", got)
	}
}
