package serve

import (
	"sync"
	"time"
)

// State is a source's health as the supervisor sees it.
type State int

const (
	// Up: the source is producing (or has not failed since it last
	// produced).
	Up State = iota
	// Degraded: the source failed and is being restarted with backoff;
	// records may be delayed but the source is not written off.
	Degraded
	// Down: the source failed DownAfter consecutive times (or spent
	// its restart budget) without producing a single record in
	// between. Operators alert on Down, not Degraded — the paper's
	// listener outages (§3.3) are exactly multi-hour Downs that went
	// unnoticed.
	Down
)

// String names the state.
func (s State) String() string {
	switch s {
	case Up:
		return "up"
	case Degraded:
		return "degraded"
	case Down:
		return "down"
	default:
		return "unknown"
	}
}

// health is one source's failure state machine: consecutive failures
// move Up → Degraded → Down; any successfully produced record snaps
// back to Up. Times come from the injected clock, so transitions are
// testable without wall time.
type health struct {
	mu        sync.Mutex
	state     State
	failures  int // consecutive
	downAfter int
	since     time.Time // when the current state was entered
}

func newHealth(downAfter int) *health {
	if downAfter < 1 {
		downAfter = 1
	}
	return &health{downAfter: downAfter}
}

// ok records a produced record: whatever the history, the source is
// Up and its failure streak is over.
func (h *health) ok(now time.Time) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.failures = 0
	if h.state != Up {
		h.state = Up
		h.since = now
	}
}

// fail records one source failure and returns the resulting state.
func (h *health) fail(now time.Time) State {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.failures++
	next := Degraded
	if h.failures >= h.downAfter {
		next = Down
	}
	if h.state != next {
		h.state = next
		h.since = now
	}
	return h.state
}

// down forces the terminal state (restart budget spent).
func (h *health) down(now time.Time) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.state != Down {
		h.state = Down
		h.since = now
	}
}

// get returns the current state and when it was entered.
func (h *health) get() (State, time.Time) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.state, h.since
}
