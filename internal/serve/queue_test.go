package serve

import (
	"fmt"
	"testing"
	"time"

	"netfail/internal/obs"
)

func rec(i int) Record {
	return Record{Source: "s", Data: []byte(fmt.Sprintf("r%d", i))}
}

func TestQueueFIFO(t *testing.T) {
	q := newQueue(4, Block, nil)
	for i := 0; i < 4; i++ {
		if got := q.push(rec(i)); got != pushAdmitted {
			t.Fatalf("push %d: %v", i, got)
		}
	}
	q.close()
	for i := 0; i < 4; i++ {
		r, ok := q.pop()
		if !ok || string(r.Data) != fmt.Sprintf("r%d", i) {
			t.Fatalf("pop %d: %q ok=%v", i, r.Data, ok)
		}
	}
	if _, ok := q.pop(); ok {
		t.Error("pop on closed empty queue reported a record")
	}
}

func TestQueueDropNewestShedsExactly(t *testing.T) {
	reg := obs.NewRegistry()
	counter := reg.Counter("shed")
	q := newQueue(3, DropNewest, counter)
	for i := 0; i < 10; i++ {
		q.push(rec(i))
	}
	shed, hw := q.stats()
	if shed != 7 || counter.Value() != 7 {
		t.Errorf("shed = %d (metric %d), want 7", shed, counter.Value())
	}
	if hw != 3 || q.depth() != 3 {
		t.Errorf("highwater = %d depth = %d, want 3, 3", hw, q.depth())
	}
	// The oldest three survive under drop-newest.
	q.close()
	for i := 0; i < 3; i++ {
		r, _ := q.pop()
		if string(r.Data) != fmt.Sprintf("r%d", i) {
			t.Errorf("kept record %d = %q", i, r.Data)
		}
	}
}

func TestQueueDropOldestKeepsTail(t *testing.T) {
	q := newQueue(3, DropOldest, nil)
	for i := 0; i < 10; i++ {
		if got := q.push(rec(i)); got != pushAdmitted {
			t.Fatalf("push %d under drop-oldest: %v", i, got)
		}
	}
	shed, _ := q.stats()
	if shed != 7 {
		t.Errorf("shed = %d, want 7", shed)
	}
	// The newest three survive under drop-oldest.
	q.close()
	for i := 7; i < 10; i++ {
		r, _ := q.pop()
		if string(r.Data) != fmt.Sprintf("r%d", i) {
			t.Errorf("kept record = %q, want r%d", r.Data, i)
		}
	}
}

func TestQueueBlockBackpressures(t *testing.T) {
	q := newQueue(1, Block, nil)
	q.push(rec(0))
	admitted := make(chan pushResult, 1)
	go func() { admitted <- q.push(rec(1)) }()
	select {
	case r := <-admitted:
		t.Fatalf("push into a full Block queue returned %v immediately", r)
	case <-time.After(20 * time.Millisecond):
	}
	if r, ok := q.pop(); !ok || string(r.Data) != "r0" {
		t.Fatalf("pop: %q ok=%v", r.Data, ok)
	}
	if r := <-admitted; r != pushAdmitted {
		t.Fatalf("unblocked push returned %v", r)
	}
	shed, _ := q.stats()
	if shed != 0 {
		t.Errorf("Block policy shed %d records", shed)
	}
}

func TestQueueCloseUnblocksPush(t *testing.T) {
	q := newQueue(1, Block, nil)
	q.push(rec(0))
	result := make(chan pushResult, 1)
	go func() { result <- q.push(rec(1)) }()
	time.Sleep(10 * time.Millisecond)
	q.close()
	if r := <-result; r != pushClosed {
		t.Errorf("push unblocked by close returned %v, want pushClosed", r)
	}
	// The backlog is still drainable after close.
	if r, ok := q.pop(); !ok || string(r.Data) != "r0" {
		t.Errorf("drain after close: %q ok=%v", r.Data, ok)
	}
}

func TestQueueDiscardCountsBacklogAsShed(t *testing.T) {
	reg := obs.NewRegistry()
	counter := reg.Counter("shed")
	q := newQueue(8, Block, counter)
	for i := 0; i < 5; i++ {
		q.push(rec(i))
	}
	if n := q.discard(); n != 5 {
		t.Errorf("discard returned %d, want 5", n)
	}
	if counter.Value() != 5 {
		t.Errorf("shed metric = %d, want 5", counter.Value())
	}
	if _, ok := q.pop(); ok {
		t.Error("pop after discard returned a record")
	}
}

func TestParsePolicyRoundTrip(t *testing.T) {
	for _, p := range []Policy{Block, DropOldest, DropNewest} {
		got, err := ParsePolicy(p.String())
		if err != nil || got != p {
			t.Errorf("ParsePolicy(%q) = %v, %v", p, got, err)
		}
	}
	if _, err := ParsePolicy("yolo"); err == nil {
		t.Error("ParsePolicy accepted garbage")
	}
}
