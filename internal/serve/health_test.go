package serve

import (
	"testing"
	"time"

	"netfail/internal/clock"
)

func TestHealthTransitions(t *testing.T) {
	clk := clock.NewFake(time.Date(2026, time.January, 1, 0, 0, 0, 0, time.UTC))
	h := newHealth(3)
	if st, _ := h.get(); st != Up {
		t.Fatalf("initial state = %v", st)
	}
	if st := h.fail(clk.Now()); st != Degraded {
		t.Errorf("after 1 failure: %v, want degraded", st)
	}
	if st := h.fail(clk.Advance(time.Second)); st != Degraded {
		t.Errorf("after 2 failures: %v, want degraded", st)
	}
	downAt := clk.Advance(time.Second)
	if st := h.fail(downAt); st != Down {
		t.Errorf("after 3 failures: %v, want down", st)
	}
	if st, since := h.get(); st != Down || !since.Equal(downAt) {
		t.Errorf("get = %v since %v, want down since %v", st, since, downAt)
	}
	// One produced record snaps back to Up and resets the streak.
	upAt := clk.Advance(time.Second)
	h.ok(upAt)
	if st, since := h.get(); st != Up || !since.Equal(upAt) {
		t.Errorf("after ok: %v since %v", st, since)
	}
	if st := h.fail(clk.Advance(time.Second)); st != Degraded {
		t.Errorf("failure streak not reset by ok: %v", st)
	}
}

func TestHealthSinceOnlyMovesOnTransition(t *testing.T) {
	clk := clock.NewFake(time.Date(2026, time.January, 1, 0, 0, 0, 0, time.UTC))
	h := newHealth(10)
	first := clk.Now()
	h.fail(first)
	h.fail(clk.Advance(time.Minute))
	if _, since := h.get(); !since.Equal(first) {
		t.Errorf("since = %v, want the first degraded instant %v", since, first)
	}
}

func TestStateString(t *testing.T) {
	for st, want := range map[State]string{Up: "up", Degraded: "degraded", Down: "down"} {
		if st.String() != want {
			t.Errorf("%d.String() = %q", st, st.String())
		}
	}
}
