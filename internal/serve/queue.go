package serve

import (
	"fmt"
	"sync"

	"netfail/internal/obs"
)

// Policy selects what a full queue does with the next record — the
// overload contract between a source and the ingest path.
type Policy int

const (
	// Block makes the producer wait for space: lossless backpressure.
	// This is the deterministic-replay setting — nothing is shed, so a
	// replayed campaign ingests every record exactly once.
	Block Policy = iota
	// DropOldest sheds the queue's oldest record to admit the new one:
	// bounded staleness, the live-tail setting where the freshest
	// evidence matters most.
	DropOldest
	// DropNewest sheds the incoming record: bounded work that keeps
	// the oldest evidence, the setting for strictly ordered archives.
	DropNewest
)

// String names the policy the way the -policy flag spells it.
func (p Policy) String() string {
	switch p {
	case Block:
		return "block"
	case DropOldest:
		return "drop-oldest"
	case DropNewest:
		return "drop-newest"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// ParsePolicy parses a -policy flag value.
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "block":
		return Block, nil
	case "drop-oldest":
		return DropOldest, nil
	case "drop-newest":
		return DropNewest, nil
	default:
		return 0, fmt.Errorf("serve: unknown policy %q (want block, drop-oldest, or drop-newest)", s)
	}
}

// pushResult is what push did with a record.
type pushResult int

const (
	// pushAdmitted: the record is in the queue (under DropOldest an
	// older record may have been shed to make room).
	pushAdmitted pushResult = iota
	// pushShed: the record itself was shed (DropNewest on a full
	// queue).
	pushShed
	// pushClosed: the queue no longer admits records; the producer
	// should stop.
	pushClosed
)

// A queue is a bounded FIFO ring of records with a shed policy. It is
// a mutex/cond ring rather than a channel so that a full queue can
// shed by policy, closing mid-drain is well defined, and depth /
// high-watermark / shed accounting is exact.
type queue struct {
	mu       sync.Mutex
	notFull  *sync.Cond
	notEmpty *sync.Cond

	buf  []Record
	head int
	n    int

	policy    Policy
	closed    bool
	shed      int64 // records lost to the policy (either end)
	highwater int   // max depth ever observed

	// shedMetric mirrors shed into the registry at the moment of each
	// shed, so the debug endpoint shows losses live (nil-safe).
	shedMetric *obs.Counter
}

func newQueue(capacity int, policy Policy, shedMetric *obs.Counter) *queue {
	if capacity < 1 {
		capacity = 1
	}
	q := &queue{buf: make([]Record, capacity), policy: policy, shedMetric: shedMetric}
	q.notFull = sync.NewCond(&q.mu)
	q.notEmpty = sync.NewCond(&q.mu)
	return q
}

// push admits rec under the policy. Under Block it waits for space;
// under the drop policies it returns immediately, shedding one record
// when full.
func (q *queue) push(rec Record) pushResult {
	q.mu.Lock()
	defer q.mu.Unlock()
	for q.policy == Block && q.n == len(q.buf) && !q.closed {
		q.notFull.Wait()
	}
	if q.closed {
		return pushClosed
	}
	if q.n == len(q.buf) {
		switch q.policy {
		case DropNewest:
			q.shed++
			q.shedMetric.Add(1)
			return pushShed
		case DropOldest:
			q.buf[q.head] = Record{}
			q.head = (q.head + 1) % len(q.buf)
			q.n--
			q.shed++
			q.shedMetric.Add(1)
		}
	}
	q.buf[(q.head+q.n)%len(q.buf)] = rec
	q.n++
	if q.n > q.highwater {
		q.highwater = q.n
	}
	q.notEmpty.Signal()
	return pushAdmitted
}

// pop removes the oldest record, waiting while the queue is open and
// empty. After close it keeps returning the backlog — drain semantics
// — and reports ok=false only once closed and empty.
func (q *queue) pop() (Record, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for q.n == 0 && !q.closed {
		q.notEmpty.Wait()
	}
	if q.n == 0 {
		return Record{}, false
	}
	rec := q.buf[q.head]
	q.buf[q.head] = Record{}
	q.head = (q.head + 1) % len(q.buf)
	q.n--
	q.notFull.Signal()
	return rec, true
}

// close stops admission. Blocked pushers return pushClosed; poppers
// drain the backlog and then stop. Idempotent.
func (q *queue) close() {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return
	}
	q.closed = true
	q.notFull.Broadcast()
	q.notEmpty.Broadcast()
}

// discard closes the queue and throws away the backlog, counting it
// as shed — the drain-deadline escape hatch. Returns how many records
// were discarded.
func (q *queue) discard() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	dropped := q.n
	q.shed += int64(dropped)
	q.shedMetric.Add(int64(dropped))
	for i := range q.buf {
		q.buf[i] = Record{}
	}
	q.head, q.n = 0, 0
	q.closed = true
	q.notFull.Broadcast()
	q.notEmpty.Broadcast()
	return dropped
}

// depth returns the current queue depth.
func (q *queue) depth() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.n
}

// stats returns the shed count and high-watermark.
func (q *queue) stats() (shed int64, highwater int) {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.shed, q.highwater
}
