// Package serve is the crash-safe live ingest layer: a supervisor
// that runs capture sources under restart-with-backoff, feeds their
// records through bounded shed-policy queues into a serialized
// WAL-append-then-apply path, and checkpoints so that a SIGKILL at
// any instant loses nothing that was durably ingested.
//
// The paper's measurement infrastructure is the motivation: its
// passive IS-IS listener ran for 13 months and its own crashes had to
// be sanitized out of the dataset afterwards (§3.3), and its syslog
// path shed messages invisibly under load. This layer makes both
// failure modes explicit: ingest survives kills (checkpoint +
// recovery replay), overload sheds by declared policy with exact
// accounting (never silently), and source failures walk a visible
// up/degraded/down state machine instead of dying quietly.
//
// The ordering contract: records from one source are applied in
// arrival order, always — queues are FIFO and each source has one
// consumer. Interleaving *across* sources is scheduling-dependent, so
// a Handler must keep per-source streams separate until its final
// report (the analysis pipeline already does: syslog lines and LSPs
// are distinct inputs). Under that contract, recovery replay — which
// applies the durable history in sequence order — reproduces the
// exact per-source streams, and a killed-and-resumed campaign reports
// byte-identically to an uninterrupted one.
package serve

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"

	"netfail/internal/backoff"
	"netfail/internal/checkpoint"
	"netfail/internal/clock"
	"netfail/internal/obs"
	"netfail/internal/salvage"
)

// A Record is one ingested datum: a syslog line, an LSP, any source
// payload, stamped with its source name and capture time.
type Record struct {
	Source string
	Time   time.Time
	Data   []byte
}

// A Source produces records. Run must respect ctx and return when
// emit reports ErrStopped. A nil return means the source is exhausted
// (a finite replay) and is not restarted; an error means it failed
// and the supervisor restarts it with backoff.
type Source interface {
	Name() string
	Run(ctx context.Context, emit func(Record) error) error
}

// A Handler applies ingested records to live analysis state. Apply is
// called from one goroutine at a time (the ingest path is
// serialized), in per-source FIFO order. Apply errors are counted,
// not fatal: one malformed record must not stop a 13-month capture.
type Handler interface {
	Apply(rec Record) error
}

// HandlerFunc adapts a function to Handler.
type HandlerFunc func(rec Record) error

// Apply calls fn.
func (fn HandlerFunc) Apply(rec Record) error { return fn(rec) }

// ErrStopped is what emit returns once the supervisor is draining:
// the source should stop producing and return.
var ErrStopped = errors.New("serve: supervisor is draining")

// Config parameterizes a Supervisor. The zero value is usable:
// defaults are filled in by New.
type Config struct {
	// Dir is the checkpoint directory (required).
	Dir string
	// QueueSize bounds each source's queue (default 1024).
	QueueSize int
	// Policy is the shed policy for full queues (default Block).
	Policy Policy
	// SnapshotEvery checkpoints the full state every N durable appends
	// (0: only the final snapshot at shutdown).
	SnapshotEvery int
	// DrainTimeout bounds the post-cancellation drain: queued records
	// older than this are discarded (and accounted as shed) so
	// shutdown cannot hang on a stuck handler (0: drain fully).
	DrainTimeout time.Duration
	// DownAfter is the consecutive-failure count that moves a source
	// from degraded to down (default 3).
	DownAfter int
	// Restart is the backoff policy for restarting failed sources
	// (default backoff.Default).
	Restart backoff.Policy
	// Clock supplies time for health transitions (default the system
	// clock).
	Clock clock.Clock
	// Registry receives ingest metrics; nil disables them.
	Registry *obs.Registry
	// Strict makes recovery refuse damaged checkpoint state instead of
	// salvaging around it.
	Strict bool
	// FsyncEach upgrades append durability from SIGKILL-safe to
	// power-loss-safe.
	FsyncEach bool
	// AppendHook, when set, runs after every durable append with the
	// total durable-record count — the chaos harness's kill point.
	AppendHook func(total int)
	// SnapshotTap, when set, wraps the snapshot writer — the chaos
	// harness's torn-write point.
	SnapshotTap func(w io.Writer) io.Writer
}

// Recovered describes the state New rebuilt from the checkpoint
// directory and replayed through the handler.
type Recovered struct {
	// Records is how many durable records were replayed.
	Records int
	// PerSource counts replayed records by source name — a finite
	// replay source resumes at its count.
	PerSource map[string]int
	// Report accounts everything recovery had to salvage around.
	Report *salvage.Report
}

// A Supervisor owns the ingest path: sources → queues → serialized
// append-then-apply → checkpoint.
type Supervisor struct {
	cfg     Config
	handler Handler
	sources []Source
	queues  map[string]*queue
	healths map[string]*health
	clk     clock.Clock
	reg     *obs.Registry

	store *checkpoint.Store

	ingestMu sync.Mutex
	history  []checkpoint.Record // every durable record, snapshot payload
	appends  int

	phase  phase
	pmu    sync.Mutex
	runErr error
	cancel context.CancelFunc
}

type phase int32

const (
	phaseReady phase = iota
	phaseRunning
	phaseDraining
	phaseStopped
)

// New opens (or creates) the checkpoint directory, replays the
// durable history through the handler, and returns a supervisor ready
// to Run plus what was recovered. The handler sees recovered records
// in original sequence order before Run starts any source.
func New(cfg Config, h Handler, sources ...Source) (*Supervisor, *Recovered, error) {
	if cfg.Dir == "" {
		return nil, nil, fmt.Errorf("serve: Config.Dir is required")
	}
	if h == nil {
		return nil, nil, fmt.Errorf("serve: handler is required")
	}
	if cfg.QueueSize <= 0 {
		cfg.QueueSize = 1024
	}
	if cfg.DownAfter <= 0 {
		cfg.DownAfter = 3
	}
	if cfg.Restart == (backoff.Policy{}) {
		cfg.Restart = backoff.Default
	}
	if cfg.Clock == nil {
		cfg.Clock = clock.System()
	}
	names := make(map[string]bool, len(sources))
	for _, src := range sources {
		if names[src.Name()] {
			return nil, nil, fmt.Errorf("serve: duplicate source name %q", src.Name())
		}
		names[src.Name()] = true
	}

	var opts []checkpoint.Option
	if cfg.Strict {
		opts = append(opts, checkpoint.Strict())
	}
	if cfg.FsyncEach {
		opts = append(opts, checkpoint.FsyncEach())
	}
	if cfg.SnapshotTap != nil {
		opts = append(opts, checkpoint.SnapshotTap(cfg.SnapshotTap))
	}
	store, rec, err := checkpoint.Open(cfg.Dir, opts...)
	if err != nil {
		return nil, nil, err
	}

	s := &Supervisor{
		cfg:     cfg,
		handler: h,
		sources: sources,
		queues:  make(map[string]*queue, len(sources)),
		healths: make(map[string]*health, len(sources)),
		clk:     cfg.Clock,
		reg:     cfg.Registry,
		store:   store,
	}
	for _, src := range sources {
		shed := cfg.Registry.Counter("serve.shed." + src.Name())
		s.queues[src.Name()] = newQueue(cfg.QueueSize, cfg.Policy, shed)
		s.healths[src.Name()] = newHealth(cfg.DownAfter)
	}

	// Replay the durable history through the handler so live ingest
	// resumes exactly where the killed process stopped.
	rcv := &Recovered{PerSource: make(map[string]int), Report: rec.Report}
	handlerErrs := s.reg.Counter("serve.handler.errors")
	for _, cr := range rec.Records {
		r, derr := decodeRecord(cr.Data)
		if derr != nil {
			if cfg.Strict {
				store.Close()
				return nil, nil, fmt.Errorf("serve: recovery: seq %d: %w", cr.Seq, derr)
			}
			rec.Report.Skip(0, "undecodable recovered record")
			continue
		}
		if aerr := h.Apply(r); aerr != nil {
			handlerErrs.Add(1)
		}
		rcv.Records++
		rcv.PerSource[r.Source]++
	}
	s.history = rec.Records
	s.appends = len(rec.Records)
	s.reg.Gauge("serve.recovered.records").Set(int64(rcv.Records))
	obs.AddSalvage(s.reg, "serve.recovery", rec.Report)
	return s, rcv, nil
}

// Run starts every source under supervision and blocks until all
// sources are exhausted or ctx is cancelled, then drains the queues
// (bounded by DrainTimeout after cancellation), writes the final
// snapshot, and closes the store. Run is one-shot.
func (s *Supervisor) Run(ctx context.Context) error {
	ctx, cancel := context.WithCancel(ctx)
	s.setPhase(phaseRunning)
	s.pmu.Lock()
	s.cancel = cancel
	s.pmu.Unlock()
	defer cancel()

	var producers sync.WaitGroup
	for _, src := range s.sources {
		producers.Add(1)
		go func(src Source) {
			defer producers.Done()
			s.supervise(ctx, src)
		}(src)
	}
	var consumers sync.WaitGroup
	for _, src := range s.sources {
		consumers.Add(1)
		go func(name string) {
			defer consumers.Done()
			s.consume(name)
		}(src.Name())
	}

	// Close the queues the moment the context dies so producers
	// blocked in push unblock (emit returns ErrStopped) — otherwise a
	// Block-policy queue could wedge shutdown. Natural exhaustion
	// closes them below instead.
	producersDone := make(chan struct{})
	go func() {
		select {
		case <-ctx.Done():
			s.setPhase(phaseDraining)
			for _, q := range s.queues {
				q.close()
			}
		case <-producersDone:
		}
	}()

	producers.Wait()
	close(producersDone)
	s.setPhase(phaseDraining)
	for _, q := range s.queues {
		q.close()
	}

	// Drain: consumers keep applying the backlog. After cancellation a
	// deadline bounds the wait; past it the backlog is discarded (and
	// accounted as shed) so shutdown cannot hang.
	consumersDone := make(chan struct{})
	go func() {
		consumers.Wait()
		close(consumersDone)
	}()
	if ctx.Err() != nil && s.cfg.DrainTimeout > 0 {
		t := time.NewTimer(s.cfg.DrainTimeout)
		select {
		case <-consumersDone:
			t.Stop()
		case <-t.C:
			for _, q := range s.queues {
				q.discard()
			}
			<-consumersDone
		}
	} else {
		<-consumersDone
	}
	s.publishQueueStats()

	// Final checkpoint: after this the WAL segments are retired and
	// restart recovers from the snapshot alone.
	err := s.finalCheckpoint()
	s.setPhase(phaseStopped)
	s.pmu.Lock()
	if s.runErr != nil {
		err = s.runErr
	}
	s.pmu.Unlock()
	return err
}

// supervise runs one source, restarting it on failure with jittered
// backoff until it exhausts, the budget is spent, or ctx dies.
func (s *Supervisor) supervise(ctx context.Context, src Source) {
	name := src.Name()
	q := s.queues[name]
	h := s.healths[name]
	restarts := s.reg.Counter("serve.source." + name + ".restarts")
	stateGauge := s.reg.Gauge("serve.source." + name + ".state")
	retry := s.cfg.Restart.New()

	emit := func(rec Record) error {
		rec.Source = name
		switch q.push(rec) {
		case pushClosed:
			return ErrStopped
		case pushShed:
			// The queue already accounted the shed in the metric.
			return nil
		}
		h.ok(s.clk.Now())
		stateGauge.Set(int64(Up))
		retry.Reset()
		return nil
	}
	for {
		err := src.Run(ctx, emit)
		if err == nil || errors.Is(err, ErrStopped) || ctx.Err() != nil {
			return
		}
		state := h.fail(s.clk.Now())
		stateGauge.Set(int64(state))
		d, ok := retry.Next()
		if !ok {
			h.down(s.clk.Now())
			stateGauge.Set(int64(Down))
			return
		}
		restarts.Add(1)
		if backoff.SleepCtx(ctx, d) != nil {
			return
		}
	}
}

// consume drains one source's queue through the serialized ingest
// path until the queue is closed and empty.
func (s *Supervisor) consume(name string) {
	q := s.queues[name]
	ingested := s.reg.Counter("serve.ingested." + name)
	depth := s.reg.Gauge("serve.queue." + name + ".depth")
	for {
		rec, ok := q.pop()
		depth.Set(int64(q.depth()))
		if !ok {
			return
		}
		if err := s.ingest(rec); err != nil {
			s.fatal(err)
			return
		}
		ingested.Add(1)
	}
}

// ingest is the serialized durability point: WAL-append the record,
// then apply it, then maybe snapshot. A record is never applied
// before it is durable, so a kill at any instant leaves the handler
// state a prefix of the durable history.
func (s *Supervisor) ingest(rec Record) error {
	s.ingestMu.Lock()
	defer s.ingestMu.Unlock()
	data := encodeRecord(rec)
	seq, err := s.store.Append(data)
	if err != nil {
		return err
	}
	s.history = append(s.history, checkpoint.Record{Seq: seq, Data: data})
	s.appends++
	s.reg.Counter("serve.wal.appends").Add(1)
	if err := s.handler.Apply(rec); err != nil {
		s.reg.Counter("serve.handler.errors").Add(1)
	}
	if s.cfg.SnapshotEvery > 0 && s.appends%s.cfg.SnapshotEvery == 0 {
		if err := s.store.Snapshot(s.history); err != nil {
			return err
		}
		s.reg.Counter("serve.snapshots").Add(1)
	}
	if s.cfg.AppendHook != nil {
		s.cfg.AppendHook(len(s.history))
	}
	return nil
}

// finalCheckpoint snapshots the full history and closes the store.
func (s *Supervisor) finalCheckpoint() error {
	s.ingestMu.Lock()
	defer s.ingestMu.Unlock()
	if err := s.store.Snapshot(s.history); err != nil {
		s.store.Close()
		return err
	}
	s.reg.Counter("serve.snapshots").Add(1)
	return s.store.Close()
}

// fatal records the first store-level failure and cancels the run:
// when durability is gone, continuing to ack records would lie.
func (s *Supervisor) fatal(err error) {
	s.pmu.Lock()
	if s.runErr == nil {
		s.runErr = err
	}
	cancel := s.cancel
	s.pmu.Unlock()
	if cancel != nil {
		cancel()
	}
}

func (s *Supervisor) setPhase(p phase) {
	s.pmu.Lock()
	// Phases only move forward; the ctx-watcher and the main path both
	// announce draining.
	if p > s.phase {
		s.phase = p
	}
	s.pmu.Unlock()
}

func (s *Supervisor) getPhase() phase {
	s.pmu.Lock()
	defer s.pmu.Unlock()
	return s.phase
}

// publishQueueStats copies final queue accounting into the registry.
func (s *Supervisor) publishQueueStats() {
	for name, q := range s.queues {
		_, hw := q.stats()
		s.reg.Gauge("serve.queue." + name + ".highwater").Set(int64(hw))
	}
}

// Health returns every source's current state, sorted by name.
type SourceHealth struct {
	Name  string
	State State
	Since time.Time
}

// Health reports each source's health state.
func (s *Supervisor) Health() []SourceHealth {
	out := make([]SourceHealth, 0, len(s.healths))
	for name, h := range s.healths {
		st, since := h.get()
		out = append(out, SourceHealth{Name: name, State: st, Since: since})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// ReadyHandler serves readiness: 200 while the supervisor is running
// (recovery done, sources started), 503 before Run and once draining
// begins — load balancers stop sending before the drain finishes.
func (s *Supervisor) ReadyHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		if s.getPhase() == phaseRunning {
			fmt.Fprintln(w, "ready")
			return
		}
		http.Error(w, "not ready", http.StatusServiceUnavailable)
	})
}

// HealthzHandler serves liveness: 200 with a per-source state line
// while no source is Down, 503 otherwise.
func (s *Supervisor) HealthzHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		healths := s.Health()
		code := http.StatusOK
		for _, h := range healths {
			if h.State == Down {
				code = http.StatusServiceUnavailable
			}
		}
		w.WriteHeader(code)
		for _, h := range healths {
			fmt.Fprintf(w, "%s %s\n", h.Name, h.State)
		}
	})
}

// Record wire format inside the WAL:
//
//	u8 len(source) | source | i64le unix-nanos | data
const recordHeaderMin = 1 + 8

// encodeRecord renders a record's WAL payload.
func encodeRecord(r Record) []byte {
	src := r.Source
	if len(src) > 255 {
		src = src[:255]
	}
	buf := make([]byte, 1+len(src)+8+len(r.Data))
	buf[0] = byte(len(src))
	copy(buf[1:], src)
	binary.LittleEndian.PutUint64(buf[1+len(src):], uint64(r.Time.UnixNano()))
	copy(buf[1+len(src)+8:], r.Data)
	return buf
}

// decodeRecord parses a WAL payload written by encodeRecord.
func decodeRecord(b []byte) (Record, error) {
	if len(b) < recordHeaderMin {
		return Record{}, fmt.Errorf("record too short (%d bytes)", len(b))
	}
	srcLen := int(b[0])
	if len(b) < 1+srcLen+8 {
		return Record{}, fmt.Errorf("record source name torn (%d of %d bytes)", len(b)-1, srcLen)
	}
	src := string(b[1 : 1+srcLen])
	nanos := int64(binary.LittleEndian.Uint64(b[1+srcLen:]))
	return Record{
		Source: src,
		Time:   time.Unix(0, nanos).UTC(),
		Data:   append([]byte(nil), b[1+srcLen+8:]...),
	}, nil
}
