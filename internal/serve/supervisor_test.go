package serve

import (
	"context"
	"fmt"
	"net/http/httptest"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"netfail/internal/backoff"
	"netfail/internal/obs"
)

var testBase = time.Date(2026, time.February, 1, 0, 0, 0, 0, time.UTC)

// replaySource emits a fixed record list starting at start — the
// in-memory twin of the campaign file sources netfail-serve resumes
// after recovery. failBefore injects one source failure immediately
// before the given index each time its count is positive.
type replaySource struct {
	name       string
	recs       []string
	start      int
	failBefore map[int]int
}

func (s *replaySource) Name() string { return s.name }

func (s *replaySource) Run(ctx context.Context, emit func(Record) error) error {
	for s.start < len(s.recs) {
		i := s.start
		if s.failBefore[i] > 0 {
			s.failBefore[i]--
			return fmt.Errorf("injected failure before record %d", i)
		}
		rec := Record{Time: testBase.Add(time.Duration(i) * time.Second), Data: []byte(s.recs[i])}
		if err := emit(rec); err != nil {
			return err
		}
		s.start = i + 1
	}
	return nil
}

// captureHandler accumulates per-source streams; report renders them
// deterministically, the stand-in for the campaign's final report.
type captureHandler struct {
	mu      sync.Mutex
	streams map[string][]string
}

func newCaptureHandler() *captureHandler {
	return &captureHandler{streams: make(map[string][]string)}
}

func (h *captureHandler) Apply(r Record) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.streams[r.Source] = append(h.streams[r.Source], string(r.Data))
	return nil
}

func (h *captureHandler) report() string {
	h.mu.Lock()
	defer h.mu.Unlock()
	names := make([]string, 0, len(h.streams))
	for name := range h.streams {
		names = append(names, name)
	}
	sort.Strings(names)
	var b strings.Builder
	for _, name := range names {
		fmt.Fprintf(&b, "%s: %s\n", name, strings.Join(h.streams[name], ","))
	}
	return b.String()
}

func records(prefix string, n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("%s-%d", prefix, i)
	}
	return out
}

func TestSupervisorIngestsAndCheckpoints(t *testing.T) {
	dir := t.TempDir()
	h := newCaptureHandler()
	reg := obs.NewRegistry()
	sup, rcv, err := New(Config{Dir: dir, Registry: reg},
		h,
		&replaySource{name: "alpha", recs: records("a", 20)},
		&replaySource{name: "beta", recs: records("b", 10)},
	)
	if err != nil {
		t.Fatal(err)
	}
	if rcv.Records != 0 {
		t.Fatalf("fresh dir recovered %d records", rcv.Records)
	}
	if err := sup.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	want := "alpha: " + strings.Join(records("a", 20), ",") + "\nbeta: " + strings.Join(records("b", 10), ",") + "\n"
	if got := h.report(); got != want {
		t.Errorf("report:\n%s\nwant:\n%s", got, want)
	}
	if got := reg.Counter("serve.wal.appends").Value(); got != 30 {
		t.Errorf("serve.wal.appends = %d, want 30", got)
	}
	if got := reg.Counter("serve.ingested.alpha").Value(); got != 20 {
		t.Errorf("serve.ingested.alpha = %d, want 20", got)
	}
	if got := reg.Counter("serve.snapshots").Value(); got != 1 {
		t.Errorf("serve.snapshots = %d, want the final one", got)
	}

	// A restart recovers everything from the final snapshot and
	// replays it through a fresh handler in original order.
	h2 := newCaptureHandler()
	_, rcv2, err := New(Config{Dir: dir}, h2)
	if err != nil {
		t.Fatal(err)
	}
	if rcv2.Records != 30 || rcv2.PerSource["alpha"] != 20 || rcv2.PerSource["beta"] != 10 {
		t.Errorf("recovered %d (%v)", rcv2.Records, rcv2.PerSource)
	}
	if got := h2.report(); got != want {
		t.Errorf("recovered report:\n%s\nwant:\n%s", got, want)
	}
	if !rcv2.Report.Clean() {
		t.Errorf("clean shutdown recovered dirty: %s", rcv2.Report)
	}
}

// TestKillResumeMatchesUninterrupted is the in-process half of the
// chaos gate: freeze the daemon at a mid-ingest kill point (the
// append hook never returns, exactly what SIGKILL does to the
// process), then recover in a second supervisor that resumes each
// replay source at its recovered count. The resumed report must be
// byte-identical to an uninterrupted run's.
func TestKillResumeMatchesUninterrupted(t *testing.T) {
	alpha := records("a", 40)
	beta := records("b", 25)

	// Uninterrupted reference run.
	refDir := t.TempDir()
	refHandler := newCaptureHandler()
	refSup, _, err := New(Config{Dir: refDir},
		refHandler,
		&replaySource{name: "alpha", recs: alpha},
		&replaySource{name: "beta", recs: beta},
	)
	if err != nil {
		t.Fatal(err)
	}
	if err := refSup.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	want := refHandler.report()

	// Killed run: the hook blocks forever once killAfter records are
	// durable, freezing the ingest path mid-flight. The goroutines it
	// strands are released when the test ends; nothing they hold is
	// shared with the resumed supervisor.
	const killAfter = 17
	dir := t.TempDir()
	frozen := make(chan struct{})
	neverReleased := make(chan struct{})
	killedSup, _, err := New(Config{
		Dir: dir,
		AppendHook: func(total int) {
			if total == killAfter {
				close(frozen)
				<-neverReleased
			}
		},
	},
		newCaptureHandler(),
		&replaySource{name: "alpha", recs: alpha},
		&replaySource{name: "beta", recs: beta},
	)
	if err != nil {
		t.Fatal(err)
	}
	go killedSup.Run(context.Background()) //nolint — abandoned on purpose: this is the kill
	select {
	case <-frozen:
	case <-time.After(10 * time.Second):
		t.Fatal("kill point never reached")
	}

	// Resume: recover the durable prefix, resume each source at its
	// recovered count, run to completion.
	resumedHandler := newCaptureHandler()
	alphaSrc := &replaySource{name: "alpha", recs: alpha}
	betaSrc := &replaySource{name: "beta", recs: beta}
	resumedSup, rcv, err := New(Config{Dir: dir}, resumedHandler, alphaSrc, betaSrc)
	if err != nil {
		t.Fatal(err)
	}
	if rcv.Records != killAfter {
		t.Fatalf("recovered %d records, want the %d durable at the kill", rcv.Records, killAfter)
	}
	alphaSrc.start = rcv.PerSource["alpha"]
	betaSrc.start = rcv.PerSource["beta"]
	if err := resumedSup.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := resumedHandler.report(); got != want {
		t.Errorf("resumed report differs from uninterrupted run:\n%s\nwant:\n%s", got, want)
	}
}

func TestSupervisorRestartsFailedSource(t *testing.T) {
	dir := t.TempDir()
	h := newCaptureHandler()
	reg := obs.NewRegistry()
	src := &replaySource{
		name:       "flaky",
		recs:       records("f", 10),
		failBefore: map[int]int{3: 2, 7: 1}, // two failures before record 3, one before 7
	}
	sup, _, err := New(Config{Dir: dir, Registry: reg}, h, src)
	if err != nil {
		t.Fatal(err)
	}
	if err := sup.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	want := "flaky: " + strings.Join(records("f", 10), ",") + "\n"
	if got := h.report(); got != want {
		t.Errorf("report after restarts:\n%s\nwant:\n%s", got, want)
	}
	if got := reg.Counter("serve.source.flaky.restarts").Value(); got != 3 {
		t.Errorf("restarts = %d, want 3", got)
	}
	for _, sh := range sup.Health() {
		if sh.State != Up {
			t.Errorf("source %s ended %v, want up (it recovered)", sh.Name, sh.State)
		}
	}
}

// brokenSource fails every Run without ever emitting.
type brokenSource struct{ name string }

func (s *brokenSource) Name() string { return s.name }
func (s *brokenSource) Run(ctx context.Context, emit func(Record) error) error {
	return fmt.Errorf("wire cut")
}

func TestSourceGoesDownAfterRestartBudget(t *testing.T) {
	dir := t.TempDir()
	reg := obs.NewRegistry()
	sup, _, err := New(Config{
		Dir:       dir,
		Registry:  reg,
		DownAfter: 2,
		Restart:   backoff.Policy{Base: time.Microsecond, Factor: 2, Retries: 3},
	}, newCaptureHandler(), &brokenSource{name: "cut"})
	if err != nil {
		t.Fatal(err)
	}
	if err := sup.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	healths := sup.Health()
	if len(healths) != 1 || healths[0].State != Down {
		t.Fatalf("health = %+v, want cut down", healths)
	}
	if got := reg.Gauge("serve.source.cut.state").Value(); got != int64(Down) {
		t.Errorf("state gauge = %d, want %d", got, Down)
	}
	rr := httptest.NewRecorder()
	sup.HealthzHandler().ServeHTTP(rr, httptest.NewRequest("GET", "/healthz", nil))
	if rr.Code != 503 || !strings.Contains(rr.Body.String(), "cut down") {
		t.Errorf("healthz = %d %q, want 503 with per-source state", rr.Code, rr.Body.String())
	}
}

// slowHandler applies records at a fixed per-record cost, creating
// backlog under a fast producer.
type slowHandler struct {
	captureHandler
	delay time.Duration
}

func (h *slowHandler) Apply(r Record) error {
	time.Sleep(h.delay)
	return h.captureHandler.Apply(r)
}

// TestOverloadSoakShedsPerPolicyWithExactAccounting drives each
// policy at ten times the queue capacity against a slow consumer. The
// acceptance contract is exact conservation: every produced record is
// either ingested or accounted as shed, depth stays bounded by the
// queue, and Block sheds nothing.
func TestOverloadSoakShedsPerPolicyWithExactAccounting(t *testing.T) {
	const capacity = 50
	const n = 10 * capacity
	for _, policy := range []Policy{Block, DropOldest, DropNewest} {
		t.Run(policy.String(), func(t *testing.T) {
			reg := obs.NewRegistry()
			h := &slowHandler{delay: 100 * time.Microsecond}
			h.streams = make(map[string][]string)
			sup, _, err := New(Config{
				Dir:       t.TempDir(),
				Registry:  reg,
				QueueSize: capacity,
				Policy:    policy,
			}, h, &replaySource{name: "burst", recs: records("r", n)})
			if err != nil {
				t.Fatal(err)
			}
			if err := sup.Run(context.Background()); err != nil {
				t.Fatal(err)
			}
			ingested := reg.Counter("serve.ingested.burst").Value()
			shed := reg.Counter("serve.shed.burst").Value()
			if ingested+shed != n {
				t.Errorf("ingested %d + shed %d != produced %d: records unaccounted", ingested, shed, n)
			}
			if hw := reg.Gauge("serve.queue.burst.highwater").Value(); hw > capacity {
				t.Errorf("highwater %d exceeds queue capacity %d", hw, capacity)
			}
			if depth := reg.Gauge("serve.queue.burst.depth").Value(); depth != 0 {
				t.Errorf("final depth = %d, want fully drained", depth)
			}
			if policy == Block {
				if shed != 0 {
					t.Errorf("Block policy shed %d records", shed)
				}
				if got := len(h.streams["burst"]); got != n {
					t.Errorf("Block ingested %d of %d", got, n)
				}
			} else if shed == 0 {
				t.Errorf("%v at 10x capacity shed nothing", policy)
			}
		})
	}
}

// stubbornSource emits forever until the supervisor stops it.
type stubbornSource struct{ name string }

func (s *stubbornSource) Name() string { return s.name }
func (s *stubbornSource) Run(ctx context.Context, emit func(Record) error) error {
	for i := 0; ; i++ {
		rec := Record{Time: testBase.Add(time.Duration(i) * time.Millisecond), Data: []byte(fmt.Sprintf("x-%d", i))}
		if err := emit(rec); err != nil {
			return err
		}
	}
}

func TestDrainTimeoutBoundsShutdown(t *testing.T) {
	reg := obs.NewRegistry()
	h := &slowHandler{delay: 2 * time.Millisecond}
	h.streams = make(map[string][]string)
	sup, _, err := New(Config{
		Dir:          t.TempDir(),
		Registry:     reg,
		QueueSize:    512,
		Policy:       Block,
		DrainTimeout: 25 * time.Millisecond,
	}, h, &stubbornSource{name: "firehose"})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	runDone := make(chan error, 1)
	go func() { runDone <- sup.Run(ctx) }()
	// Let a backlog build, then pull the plug.
	time.Sleep(100 * time.Millisecond)
	cancel()
	select {
	case err := <-runDone:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("drain did not respect its deadline")
	}
	// A 512-record backlog at 2ms each would take ~1s to drain; the
	// 25ms deadline must have discarded most of it, with accounting.
	if shed := reg.Counter("serve.shed.firehose").Value(); shed == 0 {
		t.Error("deadline-discarded backlog not accounted as shed")
	}
}

func TestReadyHandlerTracksLifecycle(t *testing.T) {
	sup, _, err := New(Config{Dir: t.TempDir()}, newCaptureHandler(), &stubbornSource{name: "src"})
	if err != nil {
		t.Fatal(err)
	}
	get := func() int {
		rr := httptest.NewRecorder()
		sup.ReadyHandler().ServeHTTP(rr, httptest.NewRequest("GET", "/ready", nil))
		return rr.Code
	}
	if got := get(); got != 503 {
		t.Errorf("ready before Run = %d, want 503", got)
	}
	ctx, cancel := context.WithCancel(context.Background())
	runDone := make(chan error, 1)
	go func() { runDone <- sup.Run(ctx) }()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && get() != 200 {
		time.Sleep(time.Millisecond)
	}
	if got := get(); got != 200 {
		t.Fatalf("ready while running = %d, want 200", got)
	}
	cancel()
	if err := <-runDone; err != nil {
		t.Fatal(err)
	}
	if got := get(); got != 503 {
		t.Errorf("ready after shutdown = %d, want 503", got)
	}
}

func TestRecordCodecRoundTrip(t *testing.T) {
	in := Record{
		Source: "isis",
		Time:   time.Date(2026, time.March, 5, 6, 7, 8, 910111213, time.UTC),
		Data:   []byte{0x00, 0x01, 0xFF, 0xA5},
	}
	out, err := decodeRecord(encodeRecord(in))
	if err != nil {
		t.Fatal(err)
	}
	if out.Source != in.Source || !out.Time.Equal(in.Time) || string(out.Data) != string(in.Data) {
		t.Errorf("roundtrip: %+v != %+v", out, in)
	}
	if _, err := decodeRecord([]byte{5, 'a'}); err == nil {
		t.Error("torn record decoded")
	}
	if _, err := decodeRecord(nil); err == nil {
		t.Error("empty record decoded")
	}
}

func TestNewValidatesConfig(t *testing.T) {
	if _, _, err := New(Config{}, newCaptureHandler()); err == nil {
		t.Error("New accepted an empty Dir")
	}
	if _, _, err := New(Config{Dir: t.TempDir()}, nil); err == nil {
		t.Error("New accepted a nil handler")
	}
	if _, _, err := New(Config{Dir: t.TempDir()}, newCaptureHandler(),
		&brokenSource{name: "dup"}, &brokenSource{name: "dup"}); err == nil {
		t.Error("New accepted duplicate source names")
	}
}
