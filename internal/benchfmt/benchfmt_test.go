package benchfmt

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: netfail
cpu: Intel(R) Xeon(R) CPU
BenchmarkFullReport-8         	      10	 123456789 ns/op	 5242880 B/op	   40000 allocs/op
BenchmarkWindowSweep-8        	     200	   6543210 ns/op	   12345 B/op	     678 allocs/op
BenchmarkOldStyle             	    1000	      1500 ns/op
BenchmarkThroughput-8         	     500	   2000000 ns/op	  52.43 MB/s	    1024 B/op	      10 allocs/op
PASS
ok  	netfail	12.345s
pkg: netfail/internal/stats
BenchmarkQuantile-8           	  100000	     10500 ns/op	    8192 B/op	       3 allocs/op
PASS
ok  	netfail/internal/stats	1.234s
`

func TestParse(t *testing.T) {
	entries, goos, goarch, procs, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if goos != "linux" || goarch != "amd64" {
		t.Errorf("goos/goarch = %q/%q, want linux/amd64", goos, goarch)
	}
	if procs != 8 {
		t.Errorf("maxprocs = %d, want 8", procs)
	}
	if len(entries) != 5 {
		t.Fatalf("got %d entries, want 5: %+v", len(entries), entries)
	}

	first := entries[0]
	if first.Name != "BenchmarkFullReport" {
		t.Errorf("name = %q, want BenchmarkFullReport", first.Name)
	}
	if first.Package != "netfail" {
		t.Errorf("package = %q, want netfail", first.Package)
	}
	if first.Iterations != 10 || first.NsPerOp != 123456789 ||
		first.BytesPerOp != 5242880 || first.AllocsPerOp != 40000 {
		t.Errorf("unexpected first entry: %+v", first)
	}

	// Without -benchmem figures the alloc fields stay -1, not 0.
	old := entries[2]
	if old.Name != "BenchmarkOldStyle" || old.BytesPerOp != -1 || old.AllocsPerOp != -1 {
		t.Errorf("unexpected plain entry: %+v", old)
	}

	if tp := entries[3]; tp.MBPerSec != 52.43 {
		t.Errorf("MB/s = %v, want 52.43", tp.MBPerSec)
	}

	if last := entries[4]; last.Package != "netfail/internal/stats" {
		t.Errorf("package = %q, want netfail/internal/stats", last.Package)
	}
}

func TestParseIgnoresNonResultLines(t *testing.T) {
	in := "BenchmarkEcho\nsome log line\nBenchmark-broken x y\n"
	entries, _, _, _, err := Parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Fatalf("got %d entries from junk input, want 0", len(entries))
	}
}

func TestMakePair(t *testing.T) {
	entries := []Entry{
		{Name: "BenchmarkAnalyzeMonth", NsPerOp: 100e6},
		{Name: "BenchmarkAnalyzeMonthTraced", NsPerOp: 101e6},
	}
	p, err := MakePair(entries, "BenchmarkAnalyzeMonth", "BenchmarkAnalyzeMonthTraced")
	if err != nil {
		t.Fatal(err)
	}
	if p.NsRatio < 1.009 || p.NsRatio > 1.011 {
		t.Errorf("NsRatio = %v, want 1.01", p.NsRatio)
	}
	if _, err := MakePair(entries, "BenchmarkMissing", "BenchmarkAnalyzeMonth"); err == nil {
		t.Error("MakePair accepted an unknown base name")
	}
	if _, err := MakePair(entries, "BenchmarkAnalyzeMonth", "BenchmarkMissing"); err == nil {
		t.Error("MakePair accepted an unknown variant name")
	}
	zero := []Entry{{Name: "a"}, {Name: "b", NsPerOp: 5}}
	if _, err := MakePair(zero, "a", "b"); err == nil {
		t.Error("MakePair accepted a zero-ns/op base")
	}
}

func TestWriteRoundTrip(t *testing.T) {
	entries, goos, goarch, procs, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	rep := Report{
		PR:         4,
		GoVersion:  "go1.24.0",
		GoOS:       goos,
		GoArch:     goarch,
		GoMaxProcs: procs,
		Benchmarks: entries,
	}
	var buf bytes.Buffer
	if err := Write(&buf, rep); err != nil {
		t.Fatal(err)
	}
	if !bytes.HasSuffix(buf.Bytes(), []byte("\n")) {
		t.Error("output missing trailing newline")
	}
	var got Report
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if got.PR != 4 || len(got.Benchmarks) != len(entries) {
		t.Errorf("round trip mismatch: pr=%d benchmarks=%d", got.PR, len(got.Benchmarks))
	}
	if got.Benchmarks[0].NsPerOp != entries[0].NsPerOp {
		t.Errorf("ns/op did not survive round trip")
	}
}

func TestParseDerivesThroughput(t *testing.T) {
	in := "BenchmarkSyslogExtract-8 \t 100 \t 500000 ns/op \t 6162 msgs/op \t 0 B/op \t 0 allocs/op\n" +
		"BenchmarkLSPDecode-8 \t 100 \t 4000 ns/op \t 1 records/op \t 0 B/op \t 0 allocs/op\n"
	entries, _, _, _, err := Parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		t.Fatalf("got %d entries, want 2", len(entries))
	}
	ex := entries[0]
	if ex.MsgsPerOp != 6162 {
		t.Errorf("msgs/op = %v, want 6162", ex.MsgsPerOp)
	}
	// 6162 msgs per 500 µs is 12.324 M msgs/s.
	if ex.MsgsPerSec < 12.3e6 || ex.MsgsPerSec > 12.4e6 {
		t.Errorf("msgs/sec = %v, want ~12.324e6", ex.MsgsPerSec)
	}
	dec := entries[1]
	if dec.RecordsPerOp != 1 {
		t.Errorf("records/op = %v, want 1", dec.RecordsPerOp)
	}
	if dec.RecordsPerSec < 249e3 || dec.RecordsPerSec > 251e3 {
		t.Errorf("records/sec = %v, want ~250e3", dec.RecordsPerSec)
	}
}

func TestReadCompareAndDeltaTable(t *testing.T) {
	prevRep := Report{PR: 7, Benchmarks: []Entry{
		{Name: "BenchmarkSyslogExtract", NsPerOp: 3455436, AllocsPerOp: 8736},
		{Name: "BenchmarkRetired", NsPerOp: 10},
	}}
	var buf bytes.Buffer
	if err := Write(&buf, prevRep); err != nil {
		t.Fatal(err)
	}
	loaded, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.PR != 7 || len(loaded.Benchmarks) != 2 {
		t.Fatalf("round trip mismatch: %+v", loaded)
	}

	cur := []Entry{
		{Name: "BenchmarkSyslogExtract", NsPerOp: 583617, AllocsPerOp: 6},
		{Name: "BenchmarkBrandNew", NsPerOp: 42, AllocsPerOp: 0},
	}
	deltas := Compare(loaded.Benchmarks, cur)
	if len(deltas) != 1 {
		t.Fatalf("got %d deltas, want 1 (new benchmarks have no baseline): %+v", len(deltas), deltas)
	}
	d := deltas[0]
	if d.Name != "BenchmarkSyslogExtract" || d.PrevAllocs != 8736 || d.CurAllocs != 6 {
		t.Errorf("unexpected delta: %+v", d)
	}
	if d.NsRatio > 0.2 {
		t.Errorf("ratio = %v, want ~0.17 (a ~5.9x speedup)", d.NsRatio)
	}

	var tbl bytes.Buffer
	WriteDeltaTable(&tbl, deltas)
	out := tbl.String()
	if !strings.Contains(out, "BenchmarkSyslogExtract") || !strings.Contains(out, "8736→6") {
		t.Errorf("delta table missing expected row:\n%s", out)
	}
}

func TestAssertAllocs(t *testing.T) {
	entries := []Entry{
		{Name: "BenchmarkZero", AllocsPerOp: 0},
		{Name: "BenchmarkSix", AllocsPerOp: 6},
		{Name: "BenchmarkUnreported", AllocsPerOp: -1},
	}
	if err := AssertAllocs(entries, "BenchmarkZero", 0); err != nil {
		t.Errorf("zero-alloc pin failed: %v", err)
	}
	if err := AssertAllocs(entries, "BenchmarkSix", 6); err != nil {
		t.Errorf("at-budget pin failed: %v", err)
	}
	if err := AssertAllocs(entries, "BenchmarkSix", 5); err == nil {
		t.Error("over-budget benchmark passed the pin")
	}
	if err := AssertAllocs(entries, "BenchmarkUnreported", 0); err == nil {
		t.Error("unreported allocs passed the pin")
	}
	if err := AssertAllocs(entries, "BenchmarkMissing", 0); err == nil {
		t.Error("unknown benchmark passed the pin")
	}
}

func TestWriteEmptyReportHasArray(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, Report{PR: 1}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"benchmarks": []`) {
		t.Errorf("empty report should render an empty array, got:\n%s", buf.String())
	}
}
