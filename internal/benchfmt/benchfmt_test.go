package benchfmt

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: netfail
cpu: Intel(R) Xeon(R) CPU
BenchmarkFullReport-8         	      10	 123456789 ns/op	 5242880 B/op	   40000 allocs/op
BenchmarkWindowSweep-8        	     200	   6543210 ns/op	   12345 B/op	     678 allocs/op
BenchmarkOldStyle             	    1000	      1500 ns/op
BenchmarkThroughput-8         	     500	   2000000 ns/op	  52.43 MB/s	    1024 B/op	      10 allocs/op
PASS
ok  	netfail	12.345s
pkg: netfail/internal/stats
BenchmarkQuantile-8           	  100000	     10500 ns/op	    8192 B/op	       3 allocs/op
PASS
ok  	netfail/internal/stats	1.234s
`

func TestParse(t *testing.T) {
	entries, goos, goarch, procs, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if goos != "linux" || goarch != "amd64" {
		t.Errorf("goos/goarch = %q/%q, want linux/amd64", goos, goarch)
	}
	if procs != 8 {
		t.Errorf("maxprocs = %d, want 8", procs)
	}
	if len(entries) != 5 {
		t.Fatalf("got %d entries, want 5: %+v", len(entries), entries)
	}

	first := entries[0]
	if first.Name != "BenchmarkFullReport" {
		t.Errorf("name = %q, want BenchmarkFullReport", first.Name)
	}
	if first.Package != "netfail" {
		t.Errorf("package = %q, want netfail", first.Package)
	}
	if first.Iterations != 10 || first.NsPerOp != 123456789 ||
		first.BytesPerOp != 5242880 || first.AllocsPerOp != 40000 {
		t.Errorf("unexpected first entry: %+v", first)
	}

	// Without -benchmem figures the alloc fields stay -1, not 0.
	old := entries[2]
	if old.Name != "BenchmarkOldStyle" || old.BytesPerOp != -1 || old.AllocsPerOp != -1 {
		t.Errorf("unexpected plain entry: %+v", old)
	}

	if tp := entries[3]; tp.MBPerSec != 52.43 {
		t.Errorf("MB/s = %v, want 52.43", tp.MBPerSec)
	}

	if last := entries[4]; last.Package != "netfail/internal/stats" {
		t.Errorf("package = %q, want netfail/internal/stats", last.Package)
	}
}

func TestParseIgnoresNonResultLines(t *testing.T) {
	in := "BenchmarkEcho\nsome log line\nBenchmark-broken x y\n"
	entries, _, _, _, err := Parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Fatalf("got %d entries from junk input, want 0", len(entries))
	}
}

func TestMakePair(t *testing.T) {
	entries := []Entry{
		{Name: "BenchmarkAnalyzeMonth", NsPerOp: 100e6},
		{Name: "BenchmarkAnalyzeMonthTraced", NsPerOp: 101e6},
	}
	p, err := MakePair(entries, "BenchmarkAnalyzeMonth", "BenchmarkAnalyzeMonthTraced")
	if err != nil {
		t.Fatal(err)
	}
	if p.NsRatio < 1.009 || p.NsRatio > 1.011 {
		t.Errorf("NsRatio = %v, want 1.01", p.NsRatio)
	}
	if _, err := MakePair(entries, "BenchmarkMissing", "BenchmarkAnalyzeMonth"); err == nil {
		t.Error("MakePair accepted an unknown base name")
	}
	if _, err := MakePair(entries, "BenchmarkAnalyzeMonth", "BenchmarkMissing"); err == nil {
		t.Error("MakePair accepted an unknown variant name")
	}
	zero := []Entry{{Name: "a"}, {Name: "b", NsPerOp: 5}}
	if _, err := MakePair(zero, "a", "b"); err == nil {
		t.Error("MakePair accepted a zero-ns/op base")
	}
}

func TestWriteRoundTrip(t *testing.T) {
	entries, goos, goarch, procs, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	rep := Report{
		PR:         4,
		GoVersion:  "go1.24.0",
		GoOS:       goos,
		GoArch:     goarch,
		GoMaxProcs: procs,
		Benchmarks: entries,
	}
	var buf bytes.Buffer
	if err := Write(&buf, rep); err != nil {
		t.Fatal(err)
	}
	if !bytes.HasSuffix(buf.Bytes(), []byte("\n")) {
		t.Error("output missing trailing newline")
	}
	var got Report
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if got.PR != 4 || len(got.Benchmarks) != len(entries) {
		t.Errorf("round trip mismatch: pr=%d benchmarks=%d", got.PR, len(got.Benchmarks))
	}
	if got.Benchmarks[0].NsPerOp != entries[0].NsPerOp {
		t.Errorf("ns/op did not survive round trip")
	}
}

func TestWriteEmptyReportHasArray(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, Report{PR: 1}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"benchmarks": []`) {
		t.Errorf("empty report should render an empty array, got:\n%s", buf.String())
	}
}
