// Package benchfmt parses `go test -bench` output into structured
// records and renders them as the BENCH_<n>.json trajectory files the
// benchmark harness (scripts/bench.sh) emits: one JSON document per
// PR with ns/op, B/op, and allocs/op for every benchmark, so perf
// regressions show up as a diffable artifact instead of a vibe.
package benchfmt

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Entry is one benchmark result line.
type Entry struct {
	// Name is the benchmark name with the -GOMAXPROCS suffix
	// stripped (it is recorded once per file in Report.GoMaxProcs).
	Name string `json:"name"`
	// Package is the Go package the benchmark ran in, from the
	// preceding "pkg:" header line (empty if none was seen).
	Package string `json:"package,omitempty"`
	// Iterations is b.N for the measured run.
	Iterations int64 `json:"iterations"`
	// NsPerOp is wall-clock nanoseconds per operation.
	NsPerOp float64 `json:"ns_per_op"`
	// BytesPerOp and AllocsPerOp are -benchmem allocation figures;
	// -1 when the benchmark did not report them.
	BytesPerOp  int64 `json:"b_per_op"`
	AllocsPerOp int64 `json:"allocs_per_op"`
	// MBPerSec is throughput for benchmarks that b.SetBytes; 0 when
	// absent.
	MBPerSec float64 `json:"mb_per_sec,omitempty"`
}

// Pair records a variant-vs-baseline benchmark pairing — typically an
// instrumented run against its plain counterpart — and the ns/op
// overhead ratio between them.
type Pair struct {
	// Base and Variant name the two benchmarks being compared.
	Base    string `json:"base"`
	Variant string `json:"variant"`
	// NsRatio is variant ns/op divided by base ns/op: 1.00 means the
	// variant is free, 1.02 means 2% overhead.
	NsRatio float64 `json:"ns_ratio"`
}

// MakePair resolves base and variant against the parsed entries and
// computes their ns/op ratio. It errors if either name is missing or
// the base measured zero.
func MakePair(entries []Entry, base, variant string) (Pair, error) {
	find := func(name string) (Entry, error) {
		for _, e := range entries {
			if e.Name == name {
				return e, nil
			}
		}
		return Entry{}, fmt.Errorf("benchfmt: pair references unknown benchmark %q", name)
	}
	b, err := find(base)
	if err != nil {
		return Pair{}, err
	}
	v, err := find(variant)
	if err != nil {
		return Pair{}, err
	}
	if b.NsPerOp == 0 {
		return Pair{}, fmt.Errorf("benchfmt: pair base %q measured 0 ns/op", base)
	}
	return Pair{Base: base, Variant: variant, NsRatio: v.NsPerOp / b.NsPerOp}, nil
}

// Report is the BENCH_<n>.json document.
type Report struct {
	// PR is the stacked-PR sequence number the measurement belongs
	// to (the <n> of BENCH_<n>.json).
	PR int `json:"pr"`
	// GoVersion, GoOS, GoArch, and GoMaxProcs pin the environment
	// that produced the numbers.
	GoVersion  string `json:"go_version,omitempty"`
	GoOS       string `json:"goos,omitempty"`
	GoArch     string `json:"goarch,omitempty"`
	GoMaxProcs int    `json:"gomaxprocs,omitempty"`
	Benchmarks []Entry `json:"benchmarks"`
	// Pairs holds variant-vs-baseline overhead ratios (e.g. the
	// observability-enabled analysis against the plain one).
	Pairs []Pair `json:"pairs,omitempty"`
}

// Parse reads `go test -bench` output and returns the benchmark
// entries plus the goos/goarch headers if present. Non-benchmark
// lines (PASS, ok, log output) are ignored.
func Parse(r io.Reader) (entries []Entry, goos, goarch string, maxProcs int, err error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1024*1024), 1024*1024)
	pkg := ""
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
			continue
		case strings.HasPrefix(line, "goarch:"):
			goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
			continue
		case strings.HasPrefix(line, "pkg:"):
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
			continue
		case !strings.HasPrefix(line, "Benchmark"):
			continue
		}
		e, procs, ok := parseLine(line)
		if !ok {
			continue
		}
		e.Package = pkg
		if procs > maxProcs {
			maxProcs = procs
		}
		entries = append(entries, e)
	}
	if err := sc.Err(); err != nil {
		return nil, "", "", 0, fmt.Errorf("benchfmt: %w", err)
	}
	return entries, goos, goarch, maxProcs, nil
}

// parseLine parses one result line of the form
//
//	BenchmarkName-8  10  123456 ns/op  789 B/op  12 allocs/op
//
// returning ok=false for lines that are not results (e.g. the bare
// "BenchmarkName" echo emitted with -v).
func parseLine(line string) (Entry, int, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Entry{}, 0, false
	}
	name, procs := splitProcs(fields[0])
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Entry{}, 0, false
	}
	e := Entry{Name: name, Iterations: iters, BytesPerOp: -1, AllocsPerOp: -1}
	// The remainder is value/unit pairs.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Entry{}, 0, false
		}
		switch fields[i+1] {
		case "ns/op":
			e.NsPerOp = v
		case "B/op":
			e.BytesPerOp = int64(v)
		case "allocs/op":
			e.AllocsPerOp = int64(v)
		case "MB/s":
			e.MBPerSec = v
		}
	}
	if e.NsPerOp == 0 && e.Iterations == 0 {
		return Entry{}, 0, false
	}
	return e, procs, true
}

// splitProcs splits "BenchmarkFoo-8" into ("BenchmarkFoo", 8).
func splitProcs(s string) (string, int) {
	i := strings.LastIndexByte(s, '-')
	if i < 0 {
		return s, 0
	}
	n, err := strconv.Atoi(s[i+1:])
	if err != nil {
		return s, 0
	}
	return s[:i], n
}

// Write renders the report as indented JSON with a trailing newline.
func Write(w io.Writer, rep Report) error {
	if rep.Benchmarks == nil {
		rep.Benchmarks = []Entry{}
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}
