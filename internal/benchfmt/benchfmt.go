// Package benchfmt parses `go test -bench` output into structured
// records and renders them as the BENCH_<n>.json trajectory files the
// benchmark harness (scripts/bench.sh) emits: one JSON document per
// PR with ns/op, B/op, and allocs/op for every benchmark, so perf
// regressions show up as a diffable artifact instead of a vibe.
package benchfmt

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Entry is one benchmark result line.
type Entry struct {
	// Name is the benchmark name with the -GOMAXPROCS suffix
	// stripped (it is recorded once per file in Report.GoMaxProcs).
	Name string `json:"name"`
	// Package is the Go package the benchmark ran in, from the
	// preceding "pkg:" header line (empty if none was seen).
	Package string `json:"package,omitempty"`
	// Iterations is b.N for the measured run.
	Iterations int64 `json:"iterations"`
	// NsPerOp is wall-clock nanoseconds per operation.
	NsPerOp float64 `json:"ns_per_op"`
	// BytesPerOp and AllocsPerOp are -benchmem allocation figures;
	// -1 when the benchmark did not report them.
	BytesPerOp  int64 `json:"b_per_op"`
	AllocsPerOp int64 `json:"allocs_per_op"`
	// MBPerSec is throughput for benchmarks that b.SetBytes; 0 when
	// absent.
	MBPerSec float64 `json:"mb_per_sec,omitempty"`
	// MsgsPerOp and RecordsPerOp mirror the custom b.ReportMetric
	// units the parse and decode benchmarks emit; 0 when absent.
	MsgsPerOp    float64 `json:"msgs_per_op,omitempty"`
	RecordsPerOp float64 `json:"records_per_op,omitempty"`
	// MsgsPerSec and RecordsPerSec are the derived throughput figures
	// (unit count × 1e9 / ns per op) — the headline numbers the
	// performance docs quote; 0 when underived.
	MsgsPerSec    float64 `json:"msgs_per_sec,omitempty"`
	RecordsPerSec float64 `json:"records_per_sec,omitempty"`
}

// Pair records a variant-vs-baseline benchmark pairing — typically an
// instrumented run against its plain counterpart — and the ns/op
// overhead ratio between them.
type Pair struct {
	// Base and Variant name the two benchmarks being compared.
	Base    string `json:"base"`
	Variant string `json:"variant"`
	// NsRatio is variant ns/op divided by base ns/op: 1.00 means the
	// variant is free, 1.02 means 2% overhead.
	NsRatio float64 `json:"ns_ratio"`
}

// MakePair resolves base and variant against the parsed entries and
// computes their ns/op ratio. It errors if either name is missing or
// the base measured zero.
func MakePair(entries []Entry, base, variant string) (Pair, error) {
	find := func(name string) (Entry, error) {
		for _, e := range entries {
			if e.Name == name {
				return e, nil
			}
		}
		return Entry{}, fmt.Errorf("benchfmt: pair references unknown benchmark %q", name)
	}
	b, err := find(base)
	if err != nil {
		return Pair{}, err
	}
	v, err := find(variant)
	if err != nil {
		return Pair{}, err
	}
	if b.NsPerOp == 0 {
		return Pair{}, fmt.Errorf("benchfmt: pair base %q measured 0 ns/op", base)
	}
	return Pair{Base: base, Variant: variant, NsRatio: v.NsPerOp / b.NsPerOp}, nil
}

// ScaleResult records one spill-campaign scale point: a sharded
// capture simulated and analyzed end to end at some CENIC multiplier,
// with the throughput and peak-memory figures `make scale` gates on.
type ScaleResult struct {
	// Name labels the point, e.g. "scale-10x".
	Name string `json:"name"`
	// Multiplier is the campaign size in CENIC-backbone units: the
	// backbone plus multiplier-1 spine/leaf pod domains.
	Multiplier int `json:"multiplier"`
	// Shards and Links describe the capture's topology.
	Shards int `json:"shards"`
	Links  int `json:"links"`
	// Events is the total records captured (syslog + LSP frames);
	// CaptureBytes is the on-disk size of the capture directory —
	// the bytes-processed figure the throughput columns derive from.
	Events       int64 `json:"events"`
	CaptureBytes int64 `json:"capture_bytes"`
	// SimulateSec and AnalyzeSec are wall-clock seconds for the two
	// phases; EventsPerSec is Events over their sum.
	SimulateSec  float64 `json:"simulate_sec"`
	AnalyzeSec   float64 `json:"analyze_sec"`
	EventsPerSec float64 `json:"events_per_sec"`
	// PeakRSSKB is the process's high-water resident set after the
	// point completed (ru_maxrss). The high-water mark is monotone
	// across a run, so points must execute in ascending multiplier
	// order for per-point attribution to mean anything.
	PeakRSSKB int64 `json:"peak_rss_kb"`
}

// WriteScaleTable renders the scale points as the table `make scale`
// prints: one row per multiplier with throughput, on-disk capture
// size, and peak RSS.
func WriteScaleTable(w io.Writer, rs []ScaleResult) {
	fmt.Fprintf(w, "%-12s %7s %7s %9s %11s %11s %9s %10s %11s %12s\n",
		"scale", "mult", "shards", "links", "events", "capture MB", "sim s", "analyze s", "events/s", "peak RSS MB")
	for _, r := range rs {
		fmt.Fprintf(w, "%-12s %7d %7d %9d %11d %11.1f %9.1f %10.1f %11.0f %12.1f\n",
			r.Name, r.Multiplier, r.Shards, r.Links, r.Events,
			float64(r.CaptureBytes)/(1<<20), r.SimulateSec, r.AnalyzeSec,
			r.EventsPerSec, float64(r.PeakRSSKB)/1024)
	}
}

// Report is the BENCH_<n>.json document.
type Report struct {
	// PR is the stacked-PR sequence number the measurement belongs
	// to (the <n> of BENCH_<n>.json).
	PR int `json:"pr"`
	// GoVersion, GoOS, GoArch, and GoMaxProcs pin the environment
	// that produced the numbers.
	GoVersion  string  `json:"go_version,omitempty"`
	GoOS       string  `json:"goos,omitempty"`
	GoArch     string  `json:"goarch,omitempty"`
	GoMaxProcs int     `json:"gomaxprocs,omitempty"`
	Benchmarks []Entry `json:"benchmarks"`
	// Pairs holds variant-vs-baseline overhead ratios (e.g. the
	// observability-enabled analysis against the plain one).
	Pairs []Pair `json:"pairs,omitempty"`
	// Scale holds the spill-campaign scale points `make scale`
	// measures, in ascending multiplier order.
	Scale []ScaleResult `json:"scale,omitempty"`
}

// Parse reads `go test -bench` output and returns the benchmark
// entries plus the goos/goarch headers if present. Non-benchmark
// lines (PASS, ok, log output) are ignored.
func Parse(r io.Reader) (entries []Entry, goos, goarch string, maxProcs int, err error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1024*1024), 1024*1024)
	pkg := ""
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
			continue
		case strings.HasPrefix(line, "goarch:"):
			goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
			continue
		case strings.HasPrefix(line, "pkg:"):
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
			continue
		case !strings.HasPrefix(line, "Benchmark"):
			continue
		}
		e, procs, ok := parseLine(line)
		if !ok {
			continue
		}
		e.Package = pkg
		if procs > maxProcs {
			maxProcs = procs
		}
		entries = append(entries, e)
	}
	if err := sc.Err(); err != nil {
		return nil, "", "", 0, fmt.Errorf("benchfmt: %w", err)
	}
	return entries, goos, goarch, maxProcs, nil
}

// parseLine parses one result line of the form
//
//	BenchmarkName-8  10  123456 ns/op  789 B/op  12 allocs/op
//
// returning ok=false for lines that are not results (e.g. the bare
// "BenchmarkName" echo emitted with -v).
func parseLine(line string) (Entry, int, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Entry{}, 0, false
	}
	name, procs := splitProcs(fields[0])
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Entry{}, 0, false
	}
	e := Entry{Name: name, Iterations: iters, BytesPerOp: -1, AllocsPerOp: -1}
	// The remainder is value/unit pairs.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Entry{}, 0, false
		}
		switch fields[i+1] {
		case "ns/op":
			e.NsPerOp = v
		case "B/op":
			e.BytesPerOp = int64(v)
		case "allocs/op":
			e.AllocsPerOp = int64(v)
		case "MB/s":
			e.MBPerSec = v
		case "msgs/op":
			e.MsgsPerOp = v
		case "records/op":
			e.RecordsPerOp = v
		}
	}
	if e.NsPerOp == 0 && e.Iterations == 0 {
		return Entry{}, 0, false
	}
	if e.NsPerOp > 0 {
		if e.MsgsPerOp > 0 {
			e.MsgsPerSec = e.MsgsPerOp * 1e9 / e.NsPerOp
		}
		if e.RecordsPerOp > 0 {
			e.RecordsPerSec = e.RecordsPerOp * 1e9 / e.NsPerOp
		}
	}
	return e, procs, true
}

// splitProcs splits "BenchmarkFoo-8" into ("BenchmarkFoo", 8).
func splitProcs(s string) (string, int) {
	i := strings.LastIndexByte(s, '-')
	if i < 0 {
		return s, 0
	}
	n, err := strconv.Atoi(s[i+1:])
	if err != nil {
		return s, 0
	}
	return s[:i], n
}

// Read loads a previously written BENCH_<n>.json report.
func Read(r io.Reader) (Report, error) {
	var rep Report
	if err := json.NewDecoder(r).Decode(&rep); err != nil {
		return Report{}, fmt.Errorf("benchfmt: %w", err)
	}
	return rep, nil
}

// Delta is one benchmark's movement between two reports.
type Delta struct {
	Name string
	// PrevNs and CurNs are ns/op in the two reports; NsRatio is
	// cur/prev (0.5 means the benchmark got twice as fast).
	PrevNs, CurNs float64
	NsRatio       float64
	// PrevAllocs and CurAllocs are allocs/op (-1 when unreported).
	PrevAllocs, CurAllocs int64
}

// Compare pairs cur's entries with prev's by name and returns the
// deltas in cur's order, skipping benchmarks absent from prev or with
// an unmeasured previous time.
func Compare(prev, cur []Entry) []Delta {
	prevBy := make(map[string]Entry, len(prev))
	for _, e := range prev {
		prevBy[e.Name] = e
	}
	var out []Delta
	for _, e := range cur {
		p, ok := prevBy[e.Name]
		if !ok || p.NsPerOp == 0 {
			continue
		}
		out = append(out, Delta{
			Name:   e.Name,
			PrevNs: p.NsPerOp, CurNs: e.NsPerOp,
			NsRatio:    e.NsPerOp / p.NsPerOp,
			PrevAllocs: p.AllocsPerOp, CurAllocs: e.AllocsPerOp,
		})
	}
	return out
}

// WriteDeltaTable renders the cur-vs-prev ratio table the bench
// harness prints: one row per benchmark present in both reports.
func WriteDeltaTable(w io.Writer, deltas []Delta) {
	fmt.Fprintf(w, "%-34s %14s %14s %7s %9s\n", "benchmark", "prev ns/op", "cur ns/op", "ratio", "allocs")
	for _, d := range deltas {
		allocs := fmt.Sprintf("%d→%d", d.PrevAllocs, d.CurAllocs)
		if d.PrevAllocs < 0 || d.CurAllocs < 0 {
			allocs = "-"
		}
		fmt.Fprintf(w, "%-34s %14.0f %14.0f %7.2f %9s\n", d.Name, d.PrevNs, d.CurNs, d.NsRatio, allocs)
	}
}

// AssertAllocs checks that the named benchmark reported at most max
// allocs/op — the alloc-regression gate `make bench-compare` enforces
// on the zero-allocation hot paths.
func AssertAllocs(entries []Entry, name string, max int64) error {
	for _, e := range entries {
		if e.Name != name {
			continue
		}
		if e.AllocsPerOp < 0 {
			return fmt.Errorf("benchfmt: %s did not report allocs/op (run with -benchmem)", name)
		}
		if e.AllocsPerOp > max {
			return fmt.Errorf("benchfmt: %s allocates %d per op, pinned at %d", name, e.AllocsPerOp, max)
		}
		return nil
	}
	return fmt.Errorf("benchfmt: alloc pin references unknown benchmark %q", name)
}

// Write renders the report as indented JSON with a trailing newline.
func Write(w io.Writer, rep Report) error {
	if rep.Benchmarks == nil {
		rep.Benchmarks = []Entry{}
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}
