package store

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sort"

	"netfail/internal/salvage"
)

// Postings file format: the magic "NFPST1\n" followed by one frame per
// key, in strictly increasing key order:
//
//	sync[2]=0xA5,0x5A | len u32le | crc u32le | payload
//
// where payload is the key (u32le) followed by that key's record
// ordinals (u32le each, strictly increasing), and crc is CRC-32
// (IEEE) over the payload. The framing matches the segment/checkpoint
// convention so the lenient reader can resynchronize on the sync
// marker after a damaged region; the length prefix is bounded so a
// corrupted length cannot trigger a giant allocation.
//
// Postings are advisory, like the sparse time index: a store whose
// postings are missing or damaged still answers per-link and per-host
// queries by scanning the segment.
const (
	pstHeader = "NFPST1\n"

	pstSync0, pstSync1 = 0xA5, 0x5A
	pstFrameOverhead   = 2 + 4 + 4
	// pstMaxFrameLen bounds one key's payload (key + ordinals).
	pstMaxFrameLen = 64 << 20
)

// ErrNoPostings reports a missing postings file to callers that treat
// postings as advisory.
var ErrNoPostings = errors.New("store: no postings")

// writePostings writes key → ordinal posting lists to path. Keys are
// written in increasing order; each list is already increasing because
// ordinals are appended in record order.
func writePostings(path string, lists map[uint32][]uint32) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	w := bufio.NewWriterSize(f, 64<<10)
	if _, err := w.WriteString(pstHeader); err != nil {
		f.Close()
		return fmt.Errorf("store: postings: %w", err)
	}
	keys := make([]uint32, 0, len(lists))
	for k := range lists {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	var frame []byte
	for _, k := range keys {
		ords := lists[k]
		payloadLen := 4 + 4*len(ords)
		frame = frame[:0]
		if cap(frame) < pstFrameOverhead+payloadLen {
			frame = make([]byte, 0, pstFrameOverhead+payloadLen)
		}
		frame = append(frame, pstSync0, pstSync1)
		frame = binary.LittleEndian.AppendUint32(frame, uint32(payloadLen))
		frame = binary.LittleEndian.AppendUint32(frame, 0) // crc, patched below
		frame = binary.LittleEndian.AppendUint32(frame, k)
		for _, o := range ords {
			frame = binary.LittleEndian.AppendUint32(frame, o)
		}
		binary.LittleEndian.PutUint32(frame[6:], crc32.ChecksumIEEE(frame[pstFrameOverhead:]))
		if _, err := w.Write(frame); err != nil {
			f.Close()
			return fmt.Errorf("store: postings: %w", err)
		}
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return fmt.Errorf("store: postings: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("store: postings: %w", err)
	}
	return f.Close()
}

// ReadPostings parses a postings stream strictly: the first damaged
// frame aborts with an offset-accurate error.
func ReadPostings(r io.Reader, name string) (map[uint32][]uint32, error) {
	out, _, err := readPostings(r, name, false)
	return out, err
}

// ReadPostingsLenient parses a postings stream in salvage mode:
// damaged frames are skipped — resynchronizing on the next sync
// marker — and accounted in the returned report. A key whose frame was
// lost simply falls back to a segment scan at query time.
func ReadPostingsLenient(r io.Reader, name string) (map[uint32][]uint32, *salvage.Report, error) {
	return readPostings(r, name, true)
}

func readPostings(r io.Reader, name string, lenient bool) (map[uint32][]uint32, *salvage.Report, error) {
	rep := &salvage.Report{}
	br := bufio.NewReaderSize(r, 64<<10)
	hdr := make([]byte, len(pstHeader))
	if _, err := io.ReadFull(br, hdr); err != nil || !bytes.Equal(hdr, []byte(pstHeader)) {
		if lenient {
			rep.Skip(1, "bad postings header")
			return nil, rep, nil
		}
		return nil, nil, fmt.Errorf("store: %s: bad postings header", name)
	}
	out := make(map[uint32][]uint32)
	off := int64(len(pstHeader))
	frames := 0
	prevKey := int64(-1)
	discard := func(n int) {
		d, _ := br.Discard(n)
		off += int64(d)
	}
	resync := func(reason string) {
		rep.Skip(frames+1, reason)
		discard(1)
		for {
			win, _ := br.Peek(2)
			if len(win) < 2 {
				discard(len(win))
				return
			}
			if win[0] == pstSync0 && win[1] == pstSync1 {
				return
			}
			discard(1)
		}
	}
	corrupt := func(frameStart int64, reason string) error {
		return fmt.Errorf("store: %s: postings frame %d at offset %d: %s", name, frames+1, frameStart, reason)
	}
	for {
		frameStart := off
		hdr, err := br.Peek(pstFrameOverhead)
		if len(hdr) == 0 && err != nil {
			return out, rep, nil
		}
		if len(hdr) < pstFrameOverhead {
			if lenient {
				rep.Skip(frames+1, "truncated postings frame")
				discard(len(hdr))
				return out, rep, nil
			}
			return nil, nil, corrupt(frameStart, "truncated frame header")
		}
		if hdr[0] != pstSync0 || hdr[1] != pstSync1 {
			if lenient {
				resync("bad sync marker")
				continue
			}
			return nil, nil, corrupt(frameStart, "bad sync marker")
		}
		payloadLen := int(binary.LittleEndian.Uint32(hdr[2:]))
		if payloadLen < 4 || payloadLen%4 != 0 || payloadLen > pstMaxFrameLen {
			if lenient {
				resync("implausible frame length")
				continue
			}
			return nil, nil, corrupt(frameStart, "implausible frame length")
		}
		wantCRC := binary.LittleEndian.Uint32(hdr[6:])
		discard(pstFrameOverhead)
		payload := make([]byte, payloadLen)
		n, rerr := io.ReadFull(br, payload)
		off += int64(n)
		if rerr != nil {
			if lenient {
				rep.Skip(frames+1, "truncated postings frame")
				return out, rep, nil
			}
			return nil, nil, corrupt(frameStart, "truncated frame payload")
		}
		if crc32.ChecksumIEEE(payload) != wantCRC {
			if lenient {
				// Frame boundary was intact; the stream stays aligned.
				rep.Skip(frames+1, "crc mismatch")
				continue
			}
			return nil, nil, corrupt(frameStart, "crc mismatch")
		}
		key := binary.LittleEndian.Uint32(payload)
		ords, ok := decodeOrdinals(payload[4:])
		if !ok || int64(key) <= prevKey {
			if lenient {
				rep.Skip(frames+1, "implausible postings frame")
				continue
			}
			return nil, nil, corrupt(frameStart, "implausible postings frame")
		}
		prevKey = int64(key)
		out[key] = ords
		frames++
		rep.Kept++
	}
}

// decodeOrdinals decodes a strictly increasing u32 list; false means
// the bytes are rotten even though the CRC worked out (which only
// happens when a writer bug or a deliberate forgery produced them —
// the check keeps query plans safe regardless).
func decodeOrdinals(b []byte) ([]uint32, bool) {
	ords := make([]uint32, 0, len(b)/4)
	prev := int64(-1)
	for len(b) >= 4 {
		o := binary.LittleEndian.Uint32(b)
		if int64(o) <= prev {
			return nil, false
		}
		prev = int64(o)
		ords = append(ords, o)
		b = b[4:]
	}
	return ords, true
}

// loadPostings reads a postings file, mapping a missing file to
// ErrNoPostings.
func loadPostings(path string, lenient bool) (map[uint32][]uint32, *salvage.Report, error) {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil, ErrNoPostings
		}
		return nil, nil, fmt.Errorf("store: %w", err)
	}
	defer f.Close()
	if lenient {
		return ReadPostingsLenient(f, path)
	}
	out, err := ReadPostings(f, path)
	return out, nil, err
}
