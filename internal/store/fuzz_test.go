package store

import (
	"bytes"
	"reflect"
	"testing"
)

// FuzzReadPostings is the index-reader fuzz target: arbitrary bytes
// must never panic either reader, the lenient reader must always
// return (salvage mode has no failure case beyond I/O), and when the
// strict reader accepts a stream both readers must agree — a stream
// with nothing to salvage must salvage to itself.
func FuzzReadPostings(f *testing.F) {
	clean := []byte(pstHeader)
	clean = appendPstFrame(clean, 0, []uint32{0, 3, 7})
	clean = appendPstFrame(clean, 2, []uint32{1, 2})
	clean = appendPstFrame(clean, 9, []uint32{4, 5, 6, 8})
	f.Add(clean)
	f.Add([]byte(pstHeader))
	f.Add([]byte{})
	f.Add([]byte("GARBAGE\n"))
	f.Add(clean[:len(clean)-3])
	flipped := append([]byte(nil), clean...)
	flipped[len(pstHeader)+pstFrameOverhead+2] ^= 0xFF
	f.Add(flipped)
	desynced := append([]byte(nil), clean...)
	desynced[len(pstHeader)] = 0x00
	f.Add(desynced)

	f.Fuzz(func(t *testing.T, data []byte) {
		strictOut, strictErr := ReadPostings(bytes.NewReader(data), "fuzz")
		lenOut, rep, lenErr := ReadPostingsLenient(bytes.NewReader(data), "fuzz")
		if lenErr != nil {
			t.Fatalf("lenient reader errored: %v", lenErr)
		}
		if rep == nil {
			t.Fatal("lenient reader returned no salvage report")
		}
		if strictErr != nil {
			return
		}
		if !reflect.DeepEqual(strictOut, lenOut) {
			t.Fatalf("strict accepted the stream but lenient parsed it differently:\nstrict %v\nlenient %v", strictOut, lenOut)
		}
		if !rep.Clean() {
			t.Fatalf("strict accepted the stream but lenient skipped frames: %s", rep)
		}
		for k, ords := range strictOut {
			prev := int64(-1)
			for _, o := range ords {
				if int64(o) <= prev {
					t.Fatalf("key %d: accepted non-increasing ordinals %v", k, ords)
				}
				prev = int64(o)
			}
		}
	})
}
