package store

import (
	"fmt"
	"os"
	"path/filepath"

	"netfail/internal/capture"
	"netfail/internal/core"
	"netfail/internal/trace"
)

// Writer builds a store directory. The write protocol mirrors how an
// analysis run produces data:
//
//	w := store.NewWriter(dir)
//	w.SetSeed(seed)
//	w.StartMessageSegment()          // once per capture shard
//	w.AppendMessage(...)             // streamed during extraction
//	...
//	w.WriteAnalysis(analysis, configFiles, isisUpdates)
//	w.Finish()                       // writes the manifest last
//
// Messages stream through bounded segment writers as the extraction
// reads them, so building a store adds no RAM ceiling; failures and
// transitions are written in one pass from the finished analysis. The
// manifest is written last, atomically — a crash mid-build leaves a
// directory without a manifest, which readers reject, never a
// plausible half store.
//
// Writer is not safe for concurrent use.
type Writer struct {
	dir  string
	man  Manifest
	seed int64

	hosts   []string
	hostIdx map[string]uint32

	msg      *capture.SegmentFileWriter
	msgPost  map[uint32][]uint32
	msgMaxMs int64
	rec      []byte // reused record-encode buffer

	analysisDone bool
}

// NewWriter creates (or truncates into) a store directory.
func NewWriter(dir string) (*Writer, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	return &Writer{dir: dir, hostIdx: make(map[string]uint32)}, nil
}

// SetSeed records the campaign seed in the manifest.
func (w *Writer) SetSeed(seed int64) { w.seed = seed }

// StartMessageSegment rolls to the next numbered message segment. One
// segment per capture shard keeps each segment's frame timestamps
// non-decreasing (shards cover disjoint domains with overlapping
// clocks), which is the sparse-index contract.
func (w *Writer) StartMessageSegment() error {
	if err := w.finishMessageSegment(); err != nil {
		return err
	}
	n := len(w.man.Messages)
	sw, err := capture.CreateSegmentFile(w.dir, MessageSegmentName(n), MessageIndexName(n))
	if err != nil {
		return err
	}
	w.msg = sw
	w.msgPost = make(map[uint32][]uint32)
	w.man.Messages = append(w.man.Messages, MessageSegmentMeta{Name: MessageSegmentName(n)})
	return nil
}

// AppendMessage frames one raw syslog line into the current message
// segment (starting segment 0 implicitly if none is open), interning
// the host into the catalog and posting the record under it.
func (w *Writer) AppendMessage(tsMs int64, host string, line []byte) error {
	if w.msg == nil {
		if err := w.StartMessageSegment(); err != nil {
			return err
		}
	}
	h, ok := w.hostIdx[host]
	if !ok {
		h = uint32(len(w.hosts))
		w.hosts = append(w.hosts, host)
		w.hostIdx[host] = h
	}
	ord := uint32(w.msg.Records())
	w.rec = appendMessageRecord(w.rec[:0], h, line)
	if err := w.msg.Append(tsMs, w.rec); err != nil {
		return err
	}
	w.msgPost[h] = append(w.msgPost[h], ord)
	return nil
}

// finishMessageSegment closes the open message segment, writing its
// postings and recording its metadata.
func (w *Writer) finishMessageSegment() error {
	if w.msg == nil {
		return nil
	}
	n := len(w.man.Messages) - 1
	if err := w.msg.Finish(); err != nil {
		return err
	}
	meta := &w.man.Messages[n]
	meta.Records = w.msg.Records()
	meta.FirstMs, meta.LastMs = w.msg.Span()
	if err := writePostings(filepath.Join(w.dir, MessagePostingsName(n)), w.msgPost); err != nil {
		return err
	}
	w.msg, w.msgPost = nil, nil
	return nil
}

// WriteAnalysis writes the failure and transition segments (with
// their postings) from a finished analysis and fills the manifest:
// catalogs, parameters, sanitize accounting, and the precomputed
// tables. ConfigFiles and isisUpdates are the campaign-level counts
// Table 1 needs.
func (w *Writer) WriteAnalysis(a *core.Analysis, configFiles, isisUpdates int) error {
	if w.analysisDone {
		return fmt.Errorf("store: WriteAnalysis called twice")
	}
	w.analysisDone = true

	// Link catalog, in the analysis's deterministic link order.
	linkOrd := make(map[string]uint32, len(a.AnalyzedLinks))
	for _, l := range a.AnalyzedLinks {
		linkOrd[string(l.ID)] = uint32(len(w.man.Links))
		w.man.Links = append(w.man.Links, LinkEntry{ID: l.ID, Class: l.Class})
	}

	// Failures: both sources, canonical order.
	recs := make([]FailureRecord, 0, len(a.SyslogFailures)+len(a.ISISFailures))
	for _, f := range a.SyslogFailures {
		recs = append(recs, FailureRecord{Source: SourceSyslog, Link: f.Link, Start: f.Start, End: f.End})
	}
	for _, f := range a.ISISFailures {
		recs = append(recs, FailureRecord{Source: SourceISIS, Link: f.Link, Start: f.Start, End: f.End})
	}
	SortFailureRecords(recs)
	fmeta, err := w.writeFailures(recs, linkOrd)
	if err != nil {
		return err
	}
	w.man.Failures = fmeta

	// Transitions: the five filtered streams, canonical order.
	trecs := make([]TransitionRecord, 0,
		len(a.SyslogAdj)+len(a.SyslogPerRtr)+len(a.SyslogPhysical)+len(a.ISReach)+len(a.IPReach))
	appendStream := func(st Stream, ts []trace.Transition) {
		for _, t := range ts {
			trecs = append(trecs, TransitionRecord{
				Stream: st, Time: t.Time, Link: t.Link, Dir: t.Dir, Kind: t.Kind, Reporter: t.Reporter,
			})
		}
	}
	appendStream(StreamSyslogAdj, a.SyslogAdj)
	appendStream(StreamSyslogPerRouter, a.SyslogPerRtr)
	appendStream(StreamSyslogPhysical, a.SyslogPhysical)
	appendStream(StreamISReach, a.ISReach)
	appendStream(StreamIPReach, a.IPReach)
	SortTransitionRecords(trecs)
	tmeta, err := w.writeTransitions(trecs, linkOrd)
	if err != nil {
		return err
	}
	w.man.Transitions = tmeta

	// Campaign identity and parameters. The analysis input carries the
	// resolved defaults, so a query layer replaying flap or window
	// logic uses exactly the values the pipeline did.
	w.man.Start = a.In.Start
	w.man.End = a.In.End
	w.man.ListenerOffline = a.In.ListenerOffline
	w.man.ConfigFiles = configFiles
	w.man.ISISUpdates = isisUpdates
	w.man.Params = Params{
		Window:           a.In.Window,
		FlapGap:          a.In.FlapGap,
		MergeWindow:      a.In.MergeWindow,
		IncludeMultiLink: a.In.IncludeMultiLink,
	}
	w.man.SyslogSanitize = sanitizeCounts(a.SyslogSanitize)
	w.man.ISISSanitize = sanitizeCounts(a.ISISSanitize)
	w.man.Tables = Tables{
		Table1: a.Table1(configFiles, isisUpdates),
		Table2: a.Table2(),
		Table3: a.Table3(),
		Table4: a.Table4(),
		Table5: a.Table5(),
		Table6: a.Table6(),
		Table7: a.Table7(),
	}
	return nil
}

// writeFailures writes failures.seg/.idx/.pst.
func (w *Writer) writeFailures(recs []FailureRecord, linkOrd map[string]uint32) (SegmentMeta, error) {
	sw, err := capture.CreateSegmentFile(w.dir, FailuresSegment, FailuresIndex)
	if err != nil {
		return SegmentMeta{}, err
	}
	post := make(map[uint32][]uint32)
	var maxSpanMs int64
	for i, r := range recs {
		link, ok := linkOrd[string(r.Link)]
		if !ok {
			return SegmentMeta{}, fmt.Errorf("store: failure on uncataloged link %q", r.Link)
		}
		w.rec = appendFailureRecord(w.rec[:0], r.Source, link, r.Start.UnixNano(), r.End.UnixNano())
		if err := sw.Append(r.Start.UnixMilli(), w.rec); err != nil {
			return SegmentMeta{}, err
		}
		if span := r.End.UnixMilli() - r.Start.UnixMilli(); span > maxSpanMs {
			maxSpanMs = span
		}
		post[link] = append(post[link], uint32(i))
	}
	if err := sw.Finish(); err != nil {
		return SegmentMeta{}, err
	}
	if err := writePostings(filepath.Join(w.dir, FailuresPostings), post); err != nil {
		return SegmentMeta{}, err
	}
	meta := SegmentMeta{Records: sw.Records(), MaxSpanMs: maxSpanMs + 1}
	meta.FirstMs, meta.LastMs = sw.Span()
	return meta, nil
}

// writeTransitions writes transitions.seg/.idx/.pst, interning
// reporters into the catalog in record order.
func (w *Writer) writeTransitions(recs []TransitionRecord, linkOrd map[string]uint32) (SegmentMeta, error) {
	sw, err := capture.CreateSegmentFile(w.dir, TransitionsSegment, TransitionsIndex)
	if err != nil {
		return SegmentMeta{}, err
	}
	post := make(map[uint32][]uint32)
	repOrd := make(map[string]uint32)
	for i, r := range recs {
		link, ok := linkOrd[string(r.Link)]
		if !ok {
			return SegmentMeta{}, fmt.Errorf("store: transition on uncataloged link %q", r.Link)
		}
		rep, ok := repOrd[r.Reporter]
		if !ok {
			rep = uint32(len(w.man.Reporters))
			w.man.Reporters = append(w.man.Reporters, r.Reporter)
			repOrd[r.Reporter] = rep
		}
		w.rec = appendTransitionRecord(w.rec[:0], r.Stream, r.Dir, r.Kind, link, rep, r.Time.UnixNano())
		if err := sw.Append(r.Time.UnixMilli(), w.rec); err != nil {
			return SegmentMeta{}, err
		}
		post[link] = append(post[link], uint32(i))
	}
	if err := sw.Finish(); err != nil {
		return SegmentMeta{}, err
	}
	if err := writePostings(filepath.Join(w.dir, TransitionsPostings), post); err != nil {
		return SegmentMeta{}, err
	}
	meta := SegmentMeta{Records: sw.Records()}
	meta.FirstMs, meta.LastMs = sw.Span()
	return meta, nil
}

// Finish closes any open message segment and writes the manifest.
// WriteAnalysis must have been called.
func (w *Writer) Finish() error {
	if !w.analysisDone {
		return fmt.Errorf("store: Finish before WriteAnalysis")
	}
	if err := w.finishMessageSegment(); err != nil {
		return err
	}
	w.man.Format = FormatName
	w.man.Seed = w.seed
	w.man.Hosts = w.hosts
	if w.man.Links == nil {
		w.man.Links = []LinkEntry{}
	}
	return writeManifestFile(w.dir, &w.man)
}
