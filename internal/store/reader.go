package store

import (
	"context"
	"errors"
	"io"
	"os"
	"path/filepath"
	"sync"

	"netfail/internal/capture"
	"netfail/internal/salvage"
	"netfail/internal/topo"
)

// ComponentSalvage names one store component's salvage accounting,
// mirroring the capture pipeline's CaptureSalvage convention.
type ComponentSalvage struct {
	// Name identifies the component, e.g. "failures.seg".
	Name string
	// Report accounts the records kept and skipped.
	Report *salvage.Report
}

// Store is an opened store directory. The manifest, sparse indexes,
// and postings are loaded once at Open; segment files are opened per
// query, so a Store is safe for concurrent queries — the HTTP layer
// serves many at once from one handle. A lenient store accumulates
// salvage accounting across queries (Salvage); a strict store fails
// any read that touches a damaged frame with a record- and
// offset-accurate error.
type Store struct {
	dir     string
	lenient bool
	man     *Manifest

	linkOrd map[topo.LinkID]uint32
	hostOrd map[string]uint32

	failIdx  []capture.IndexEntry
	tranIdx  []capture.IndexEntry
	msgIdx   [][]capture.IndexEntry
	failPost map[uint32][]uint32
	tranPost map[uint32][]uint32
	msgPost  []map[uint32][]uint32

	mu        sync.Mutex
	salv      map[string]*salvage.Report
	salvNames []string
}

// Open opens a store directory strictly: a damaged manifest, index,
// or postings file fails immediately, and any query touching a
// damaged segment frame fails with a record- and offset-accurate
// error. Missing index or postings files are fine in both modes —
// they are advisory, and queries fall back to scanning.
func Open(dir string) (*Store, error) {
	return open(dir, false)
}

// OpenLenient opens a store directory in salvage mode: damaged
// indexes, postings, and segment regions are skipped and accounted —
// inspect Salvage after querying. The manifest's garbage tolerance
// follows the capture convention (junk around the JSON object is
// skipped; corruption inside it stays fatal, since the catalogs it
// holds name every record's link and host).
func OpenLenient(dir string) (*Store, error) {
	return open(dir, true)
}

func open(dir string, lenient bool) (*Store, error) {
	s := &Store{
		dir:     dir,
		lenient: lenient,
		salv:    make(map[string]*salvage.Report),
	}
	f, err := os.Open(filepath.Join(dir, ManifestName))
	if err != nil {
		return nil, err
	}
	if lenient {
		var rep *salvage.Report
		s.man, rep, err = ReadManifestLenient(f)
		if err == nil {
			s.addSalvage(ManifestName, rep)
		}
	} else {
		s.man, err = ReadManifest(f)
	}
	f.Close()
	if err != nil {
		return nil, err
	}

	s.linkOrd = make(map[topo.LinkID]uint32, len(s.man.Links))
	for i, l := range s.man.Links {
		s.linkOrd[l.ID] = uint32(i)
	}
	s.hostOrd = make(map[string]uint32, len(s.man.Hosts))
	for i, h := range s.man.Hosts {
		s.hostOrd[h] = uint32(i)
	}

	if s.failIdx, err = s.loadIndex(FailuresIndex); err != nil {
		return nil, err
	}
	if s.tranIdx, err = s.loadIndex(TransitionsIndex); err != nil {
		return nil, err
	}
	if s.failPost, err = s.loadPostings(FailuresPostings); err != nil {
		return nil, err
	}
	if s.tranPost, err = s.loadPostings(TransitionsPostings); err != nil {
		return nil, err
	}
	s.msgIdx = make([][]capture.IndexEntry, len(s.man.Messages))
	s.msgPost = make([]map[uint32][]uint32, len(s.man.Messages))
	for i := range s.man.Messages {
		if s.msgIdx[i], err = s.loadIndex(MessageIndexName(i)); err != nil {
			return nil, err
		}
		if s.msgPost[i], err = s.loadPostings(MessagePostingsName(i)); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// Dir returns the store directory.
func (s *Store) Dir() string { return s.dir }

// Manifest returns the loaded manifest. Callers must not mutate it.
func (s *Store) Manifest() *Manifest { return s.man }

// Lenient reports whether the store was opened in salvage mode.
func (s *Store) Lenient() bool { return s.lenient }

// Salvage returns the accumulated salvage accounting, one entry per
// store component touched so far, in first-touched order. Lenient
// reads merge their per-pass reports here; a strict store's listing
// stays empty.
func (s *Store) Salvage() []ComponentSalvage {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]ComponentSalvage, 0, len(s.salvNames))
	for _, name := range s.salvNames {
		cp := *s.salv[name]
		if s.salv[name].Reasons != nil {
			cp.Reasons = make(map[string]int, len(s.salv[name].Reasons))
			for k, v := range s.salv[name].Reasons {
				cp.Reasons[k] = v
			}
		}
		out = append(out, ComponentSalvage{Name: name, Report: &cp})
	}
	return out
}

// addSalvage merges rep into the named component's cumulative report.
func (s *Store) addSalvage(name string, rep *salvage.Report) {
	if rep == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	cur, ok := s.salv[name]
	if !ok {
		cur = &salvage.Report{}
		s.salv[name] = cur
		s.salvNames = append(s.salvNames, name)
	}
	cur.Merge(rep)
}

// loadIndex loads one advisory sparse index: a missing file is nil, a
// damaged one fails strictly or salvages leniently.
func (s *Store) loadIndex(name string) ([]capture.IndexEntry, error) {
	path := filepath.Join(s.dir, name)
	if !s.lenient {
		idx, err := capture.LoadIndex(path)
		if errors.Is(err, capture.ErrNoIndex) {
			return nil, nil
		}
		return idx, err
	}
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	defer f.Close()
	idx, rep, err := capture.ReadIndexLenient(f)
	if err != nil {
		return nil, err
	}
	s.addSalvage(name, rep)
	return idx, nil
}

// loadPostings loads one advisory postings file: a missing file is
// nil, a damaged one fails strictly or salvages leniently.
func (s *Store) loadPostings(name string) (map[uint32][]uint32, error) {
	post, rep, err := loadPostings(filepath.Join(s.dir, name), s.lenient)
	if errors.Is(err, ErrNoPostings) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	s.addSalvage(name, rep)
	return post, nil
}

// cancelStride bounds how many records scan between context checks —
// the same cadence as the capture replay path.
const cancelStride = 1024

// reseekStride is the ordinal gap beyond which a postings fetch
// re-seeks through the sparse index instead of scanning forward (two
// index strides: closer than that, scanning is cheaper than a reopen).
const reseekStride = 1024

// errStopScan ends a scan early (limit reached).
var errStopScan = errors.New("store: stop scan")

// openSeg opens a segment in the store's mode.
func (s *Store) openSeg(path string) (*capture.SegmentReader, error) {
	if s.lenient {
		return capture.OpenSegmentLenient(path)
	}
	return capture.OpenSegment(path)
}

// openSegAt opens a segment at an index entry in the store's mode.
func (s *Store) openSegAt(path string, e capture.IndexEntry) (*capture.SegmentReader, error) {
	if s.lenient {
		return capture.OpenSegmentAtLenient(path, e.Offset, e.Record)
	}
	return capture.OpenSegmentAt(path, e.Offset, e.Record)
}

// scan streams a segment's records through fn, seeking to seekMs via
// the sparse index when useSeek is set. fn returns errStopScan to end
// the scan early. Salvage accounting for the pass is merged into the
// component's cumulative report.
func (s *Store) scan(ctx context.Context, name string, idx []capture.IndexEntry, useSeek bool, seekMs int64, fn func(tsMs int64, rec []byte) error) error {
	path := filepath.Join(s.dir, name)
	var sr *capture.SegmentReader
	var err error
	if useSeek && len(idx) > 0 {
		if e, ok := capture.Locate(idx, seekMs); ok {
			sr, err = s.openSegAt(path, e)
		}
	}
	if sr == nil && err == nil {
		sr, err = s.openSeg(path)
	}
	if err != nil {
		return err
	}
	defer func() {
		if s.lenient {
			s.addSalvage(name, sr.Report())
		}
		sr.Close()
	}()
	for n := 0; ; n++ {
		if n%cancelStride == 0 {
			if cerr := ctx.Err(); cerr != nil {
				return cerr
			}
		}
		tsMs, rec, nerr := sr.Next()
		if errors.Is(nerr, io.EOF) {
			return nil
		}
		if nerr != nil {
			return nerr
		}
		if ferr := fn(tsMs, rec); ferr != nil {
			if errors.Is(ferr, errStopScan) {
				return nil
			}
			return ferr
		}
	}
}

// locateRecord returns the latest index entry at or before the target
// record ordinal, or false.
func locateRecord(idx []capture.IndexEntry, target int64) (capture.IndexEntry, bool) {
	lo, hi := 0, len(idx)
	for lo < hi {
		mid := (lo + hi) / 2
		if idx[mid].Record <= target {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == 0 {
		return capture.IndexEntry{}, false
	}
	return idx[lo-1], true
}

// fetchOrdinals streams the records at the given (ascending) written
// ordinals through fn, using the sparse index to seek across large
// gaps. On a clean segment the ordinals map exactly to records; on a
// damaged lenient segment the mapping can drift past the damage, so
// callers always re-verify their predicate against the decoded record
// — postings are an accelerator, never an authority.
func (s *Store) fetchOrdinals(ctx context.Context, name string, idx []capture.IndexEntry, ords []uint32, fn func(tsMs int64, rec []byte) error) error {
	if len(ords) == 0 {
		return nil
	}
	path := filepath.Join(s.dir, name)
	var sr *capture.SegmentReader
	var err error
	closeReader := func() {
		if sr == nil {
			return
		}
		if s.lenient {
			s.addSalvage(name, sr.Report())
		}
		sr.Close()
		sr = nil
	}
	defer closeReader()

	// cur is the written ordinal the next Next() call should return
	// (exact on clean segments; see the doc comment for damaged ones).
	var cur int64
	n := 0
	for _, o := range ords {
		target := int64(o)
		if sr == nil || target-cur > reseekStride {
			if e, ok := locateRecord(idx, target); ok && (sr == nil || e.Record > cur) {
				closeReader()
				sr, err = s.openSegAt(path, e)
				if err != nil {
					return err
				}
				cur = e.Record
			} else if sr == nil {
				sr, err = s.openSeg(path)
				if err != nil {
					return err
				}
				cur = 0
			}
		}
		for cur <= target {
			if n++; n%cancelStride == 0 {
				if cerr := ctx.Err(); cerr != nil {
					return cerr
				}
			}
			tsMs, rec, nerr := sr.Next()
			if errors.Is(nerr, io.EOF) {
				return nil
			}
			if nerr != nil {
				return nerr
			}
			cur++
			if cur-1 == target {
				if ferr := fn(tsMs, rec); ferr != nil {
					if errors.Is(ferr, errStopScan) {
						return nil
					}
					return ferr
				}
			}
		}
	}
	return nil
}
