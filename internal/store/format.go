package store

import (
	"encoding/binary"
	"fmt"
	"sort"
	"time"

	"netfail/internal/topo"
	"netfail/internal/trace"
)

const (
	// FormatName identifies the store format in the manifest.
	FormatName = "NFSTORE1"

	// FailuresSegment, TransitionsSegment and their companions are the
	// fixed store file names; message segments are numbered per
	// capture shard (MessageSegmentName).
	FailuresSegment     = "failures.seg"
	FailuresIndex       = "failures.idx"
	FailuresPostings    = "failures.pst"
	TransitionsSegment  = "transitions.seg"
	TransitionsIndex    = "transitions.idx"
	TransitionsPostings = "transitions.pst"

	// ManifestName is the store manifest file.
	ManifestName = "manifest.json"
)

// MessageSegmentName returns the nth message segment's file name.
func MessageSegmentName(n int) string { return fmt.Sprintf("messages-%04d.seg", n) }

// MessageIndexName returns the nth message segment's index file name.
func MessageIndexName(n int) string { return fmt.Sprintf("messages-%04d.idx", n) }

// MessagePostingsName returns the nth message segment's postings file.
func MessagePostingsName(n int) string { return fmt.Sprintf("messages-%04d.pst", n) }

// Source identifies which reconstruction a failure came from.
type Source uint8

const (
	// SourceSyslog is the syslog reconstruction.
	SourceSyslog Source = iota
	// SourceISIS is the IS-IS listener reconstruction.
	SourceISIS
)

// String returns "syslog" or "isis".
func (s Source) String() string {
	if s == SourceISIS {
		return "isis"
	}
	return "syslog"
}

// ParseSource is the inverse of Source.String.
func ParseSource(s string) (Source, error) {
	switch s {
	case "syslog":
		return SourceSyslog, nil
	case "isis":
		return SourceISIS, nil
	}
	return 0, fmt.Errorf("store: unknown source %q", s)
}

// Stream identifies which of the analysis's filtered transition
// streams a stored transition belongs to.
type Stream uint8

const (
	// StreamSyslogAdj is the merged syslog adjacency stream.
	StreamSyslogAdj Stream = iota
	// StreamSyslogPerRouter is the unmerged per-router adjacency stream.
	StreamSyslogPerRouter
	// StreamSyslogPhysical is the merged physical-layer stream.
	StreamSyslogPhysical
	// StreamISReach is the listener's IS-reachability stream.
	StreamISReach
	// StreamIPReach is the listener's IP-reachability stream.
	StreamIPReach
)

// String names the stream as the query surface spells it.
func (s Stream) String() string {
	switch s {
	case StreamSyslogAdj:
		return "syslog-adj"
	case StreamSyslogPerRouter:
		return "syslog-per-router"
	case StreamSyslogPhysical:
		return "syslog-physical"
	case StreamISReach:
		return "is-reach"
	case StreamIPReach:
		return "ip-reach"
	default:
		return fmt.Sprintf("Stream(%d)", int(s))
	}
}

// ParseStream is the inverse of Stream.String.
func ParseStream(s string) (Stream, error) {
	for _, st := range []Stream{StreamSyslogAdj, StreamSyslogPerRouter, StreamSyslogPhysical, StreamISReach, StreamIPReach} {
		if st.String() == s {
			return st, nil
		}
	}
	return 0, fmt.Errorf("store: unknown stream %q", s)
}

// FailureRecord is one stored failure: a trace.Failure plus the
// reconstruction it came from.
type FailureRecord struct {
	Source Source      `json:"source"`
	Link   topo.LinkID `json:"link"`
	Start  time.Time   `json:"start"`
	End    time.Time   `json:"end"`
}

// Failure converts back to the trace model.
func (r FailureRecord) Failure() trace.Failure {
	return trace.Failure{Link: r.Link, Start: r.Start, End: r.End}
}

// TransitionRecord is one stored transition: a trace.Transition plus
// the analysis stream it was filed under.
type TransitionRecord struct {
	Stream   Stream          `json:"stream"`
	Time     time.Time       `json:"time"`
	Link     topo.LinkID     `json:"link"`
	Dir      trace.Direction `json:"dir"`
	Kind     trace.Kind      `json:"kind"`
	Reporter string          `json:"reporter"`
}

// Transition converts back to the trace model.
func (r TransitionRecord) Transition() trace.Transition {
	return trace.Transition{Time: r.Time, Link: r.Link, Dir: r.Dir, Kind: r.Kind, Reporter: r.Reporter}
}

// MessageRecord is one stored syslog line: the raw wire form plus the
// emitting host and the capture timestamp (millisecond precision, the
// frame clock every segment shares).
type MessageRecord struct {
	Time time.Time `json:"time"`
	Host string    `json:"host"`
	Line string    `json:"line"`
}

// Record payload sizes. Every stored record is the segment frame's
// record bytes (the frame itself carries the millisecond timestamp);
// full-precision times travel inside the record as UnixNano.
const (
	failureRecLen    = 1 + 4 + 8 + 8         // source, link, startNs, endNs
	transitionRecLen = 1 + 1 + 1 + 4 + 4 + 8 // stream, dir, kind, link, reporter, timeNs
	messageRecMinLen = 4                     // host; the line follows
)

// appendFailureRecord encodes a failure into dst.
func appendFailureRecord(dst []byte, source Source, link uint32, startNs, endNs int64) []byte {
	var b [failureRecLen]byte
	b[0] = byte(source)
	binary.LittleEndian.PutUint32(b[1:], link)
	binary.LittleEndian.PutUint64(b[5:], uint64(startNs))
	binary.LittleEndian.PutUint64(b[13:], uint64(endNs))
	return append(dst, b[:]...)
}

// decodeFailureRecord decodes one failures.seg record.
func decodeFailureRecord(rec []byte) (source Source, link uint32, startNs, endNs int64, err error) {
	if len(rec) != failureRecLen {
		return 0, 0, 0, 0, fmt.Errorf("store: failure record: %d bytes, want %d", len(rec), failureRecLen)
	}
	source = Source(rec[0])
	if source > SourceISIS {
		return 0, 0, 0, 0, fmt.Errorf("store: failure record: unknown source %d", rec[0])
	}
	link = binary.LittleEndian.Uint32(rec[1:])
	startNs = int64(binary.LittleEndian.Uint64(rec[5:]))
	endNs = int64(binary.LittleEndian.Uint64(rec[13:]))
	return source, link, startNs, endNs, nil
}

// appendTransitionRecord encodes a transition into dst.
func appendTransitionRecord(dst []byte, stream Stream, dir trace.Direction, kind trace.Kind, link, reporter uint32, timeNs int64) []byte {
	var b [transitionRecLen]byte
	b[0] = byte(stream)
	b[1] = byte(dir)
	b[2] = byte(kind)
	binary.LittleEndian.PutUint32(b[3:], link)
	binary.LittleEndian.PutUint32(b[7:], reporter)
	binary.LittleEndian.PutUint64(b[11:], uint64(timeNs))
	return append(dst, b[:]...)
}

// decodeTransitionRecord decodes one transitions.seg record.
func decodeTransitionRecord(rec []byte) (stream Stream, dir trace.Direction, kind trace.Kind, link, reporter uint32, timeNs int64, err error) {
	if len(rec) != transitionRecLen {
		return 0, 0, 0, 0, 0, 0, fmt.Errorf("store: transition record: %d bytes, want %d", len(rec), transitionRecLen)
	}
	stream = Stream(rec[0])
	if stream > StreamIPReach {
		return 0, 0, 0, 0, 0, 0, fmt.Errorf("store: transition record: unknown stream %d", rec[0])
	}
	dir = trace.Direction(rec[1])
	if dir != trace.Down && dir != trace.Up {
		return 0, 0, 0, 0, 0, 0, fmt.Errorf("store: transition record: unknown direction %d", rec[1])
	}
	kind = trace.Kind(rec[2])
	if kind < trace.KindISISAdj || kind > trace.KindSNMP {
		return 0, 0, 0, 0, 0, 0, fmt.Errorf("store: transition record: unknown kind %d", rec[2])
	}
	link = binary.LittleEndian.Uint32(rec[3:])
	reporter = binary.LittleEndian.Uint32(rec[7:])
	timeNs = int64(binary.LittleEndian.Uint64(rec[11:]))
	return stream, dir, kind, link, reporter, timeNs, nil
}

// appendMessageRecord encodes a message into dst: the host ordinal
// followed by the raw line bytes.
func appendMessageRecord(dst []byte, host uint32, line []byte) []byte {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], host)
	dst = append(dst, b[:]...)
	return append(dst, line...)
}

// decodeMessageRecord decodes one messages segment record. The
// returned line aliases rec.
func decodeMessageRecord(rec []byte) (host uint32, line []byte, err error) {
	if len(rec) < messageRecMinLen {
		return 0, nil, fmt.Errorf("store: message record: %d bytes, want >= %d", len(rec), messageRecMinLen)
	}
	return binary.LittleEndian.Uint32(rec), rec[messageRecMinLen:], nil
}

// SortFailureRecords orders failure records into the store's canonical
// order: start time, then end time, then link, then source. The writer
// sorts before framing (the segment contract wants non-decreasing
// timestamps) and the oracle tests sort pipeline output the same way.
func SortFailureRecords(rs []FailureRecord) {
	sort.SliceStable(rs, func(i, j int) bool {
		if !rs[i].Start.Equal(rs[j].Start) {
			return rs[i].Start.Before(rs[j].Start)
		}
		if !rs[i].End.Equal(rs[j].End) {
			return rs[i].End.Before(rs[j].End)
		}
		if rs[i].Link != rs[j].Link {
			return rs[i].Link < rs[j].Link
		}
		return rs[i].Source < rs[j].Source
	})
}

// SortTransitionRecords orders transition records into the store's
// canonical order: time, then link, then stream, then direction (Down
// first), then reporter, then kind.
func SortTransitionRecords(rs []TransitionRecord) {
	sort.SliceStable(rs, func(i, j int) bool {
		if !rs[i].Time.Equal(rs[j].Time) {
			return rs[i].Time.Before(rs[j].Time)
		}
		if rs[i].Link != rs[j].Link {
			return rs[i].Link < rs[j].Link
		}
		if rs[i].Stream != rs[j].Stream {
			return rs[i].Stream < rs[j].Stream
		}
		if rs[i].Dir != rs[j].Dir {
			return rs[i].Dir == trace.Down
		}
		if rs[i].Reporter != rs[j].Reporter {
			return rs[i].Reporter < rs[j].Reporter
		}
		return rs[i].Kind < rs[j].Kind
	})
}
