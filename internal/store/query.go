package store

import (
	"bytes"
	"context"
	"fmt"
	"time"

	"netfail/internal/salvage"
	"netfail/internal/topo"
	"netfail/internal/trace"
)

// Query carries one query's resolved filters. Build it with the
// functional options; the zero value matches everything.
type Query struct {
	link     *topo.LinkID
	source   *Source
	stream   *Stream
	dir      *trace.Direction
	kind     *trace.Kind
	reporter *string
	host     *string
	contains []byte
	from, to time.Time
	window   bool
	limit    int
}

// Option narrows a query.
type Option func(*Query)

// WithLink restricts results to one link.
func WithLink(id topo.LinkID) Option { return func(q *Query) { q.link = &id } }

// WithSource restricts failures to one reconstruction.
func WithSource(src Source) Option { return func(q *Query) { q.source = &src } }

// WithStream restricts transitions to one analysis stream.
func WithStream(st Stream) Option { return func(q *Query) { q.stream = &st } }

// WithDirection restricts transitions to one direction.
func WithDirection(d trace.Direction) Option { return func(q *Query) { q.dir = &d } }

// WithKind restricts transitions to one observation kind.
func WithKind(k trace.Kind) Option { return func(q *Query) { q.kind = &k } }

// WithReporter restricts transitions to one reporting router.
func WithReporter(r string) Option { return func(q *Query) { q.reporter = &r } }

// WithHost restricts messages to one emitting host.
func WithHost(h string) Option { return func(q *Query) { q.host = &h } }

// WithContains restricts messages to lines containing the substring.
func WithContains(sub string) Option { return func(q *Query) { q.contains = []byte(sub) } }

// WithWindow restricts results to a time window: transitions and
// messages with from <= t < to, failures overlapping [from, to) — the
// same interval conventions as the pipeline (trace.Failure.Overlaps).
func WithWindow(from, to time.Time) Option {
	return func(q *Query) { q.from, q.to, q.window = from, to, true }
}

// WithLimit caps the result count (0 means unlimited). Results arrive
// in the store's canonical order, so a limit returns a stable prefix.
func WithLimit(n int) Option { return func(q *Query) { q.limit = n } }

func resolveQuery(opts []Option) Query {
	var q Query
	for _, o := range opts {
		o(&q)
	}
	return q
}

// full reports whether the result set has hit the query's limit.
func (q *Query) full(n int) bool { return q.limit > 0 && n >= q.limit }

// Links returns the link catalog — the analysis namespace the stored
// records reference.
func (s *Store) Links(ctx context.Context) ([]LinkEntry, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return append([]LinkEntry(nil), s.man.Links...), nil
}

// Tables returns the precomputed agreement tables.
func (s *Store) Tables() *Tables { return &s.man.Tables }

// Table returns precomputed table n (1–7).
func (s *Store) Table(n int) (any, error) { return s.man.Tables.Table(n) }

// Failures returns stored failures matching the options, in canonical
// store order. A link filter uses the posting lists; a window uses the
// sparse time index (seeking to from minus the longest stored failure
// span, so failures that started before the window but overlap it are
// found); filters are always re-verified against the decoded records.
func (s *Store) Failures(ctx context.Context, opts ...Option) ([]FailureRecord, error) {
	q := resolveQuery(opts)
	var out []FailureRecord
	collect := func(tsMs int64, rec []byte) error {
		r, err := s.decodeFailure(rec)
		if err != nil {
			return s.recordDamage(FailuresSegment, err)
		}
		if !s.matchFailure(&q, r) {
			return nil
		}
		out = append(out, r)
		if q.full(len(out)) {
			return errStopScan
		}
		return nil
	}

	if q.link != nil && s.failPost != nil {
		ord, ok := s.linkOrd[*q.link]
		if !ok {
			return nil, nil
		}
		if err := s.fetchOrdinals(ctx, FailuresSegment, s.failIdx, s.failPost[ord], collect); err != nil {
			return nil, err
		}
		return out, nil
	}
	seekMs := int64(0)
	if q.window {
		seekMs = q.from.UnixMilli() - s.man.Failures.MaxSpanMs - 1
	}
	stop := func(tsMs int64, rec []byte) error {
		if q.window && tsMs > q.to.UnixMilli() {
			return errStopScan
		}
		return collect(tsMs, rec)
	}
	if err := s.scan(ctx, FailuresSegment, s.failIdx, q.window, seekMs, stop); err != nil {
		return nil, err
	}
	return out, nil
}

// decodeFailure maps one failures.seg record back through the
// catalogs.
func (s *Store) decodeFailure(rec []byte) (FailureRecord, error) {
	source, link, startNs, endNs, err := decodeFailureRecord(rec)
	if err != nil {
		return FailureRecord{}, err
	}
	id, err := s.linkByOrd(link)
	if err != nil {
		return FailureRecord{}, err
	}
	return FailureRecord{
		Source: source,
		Link:   id,
		Start:  time.Unix(0, startNs).UTC(),
		End:    time.Unix(0, endNs).UTC(),
	}, nil
}

func (s *Store) matchFailure(q *Query, r FailureRecord) bool {
	if q.link != nil && r.Link != *q.link {
		return false
	}
	if q.source != nil && r.Source != *q.source {
		return false
	}
	if q.window && !r.Failure().Overlaps(q.from, q.to) {
		return false
	}
	return true
}

// Transitions returns stored transitions matching the options, in
// canonical store order.
func (s *Store) Transitions(ctx context.Context, opts ...Option) ([]TransitionRecord, error) {
	q := resolveQuery(opts)
	var out []TransitionRecord
	collect := func(tsMs int64, rec []byte) error {
		r, err := s.decodeTransition(rec)
		if err != nil {
			return s.recordDamage(TransitionsSegment, err)
		}
		if !s.matchTransition(&q, r) {
			return nil
		}
		out = append(out, r)
		if q.full(len(out)) {
			return errStopScan
		}
		return nil
	}

	if q.link != nil && s.tranPost != nil {
		ord, ok := s.linkOrd[*q.link]
		if !ok {
			return nil, nil
		}
		if err := s.fetchOrdinals(ctx, TransitionsSegment, s.tranIdx, s.tranPost[ord], collect); err != nil {
			return nil, err
		}
		return out, nil
	}
	stop := func(tsMs int64, rec []byte) error {
		if q.window && tsMs > q.to.UnixMilli() {
			return errStopScan
		}
		return collect(tsMs, rec)
	}
	if err := s.scan(ctx, TransitionsSegment, s.tranIdx, q.window, q.from.UnixMilli()-1, stop); err != nil {
		return nil, err
	}
	return out, nil
}

// decodeTransition maps one transitions.seg record back through the
// catalogs.
func (s *Store) decodeTransition(rec []byte) (TransitionRecord, error) {
	stream, dir, kind, link, reporter, timeNs, err := decodeTransitionRecord(rec)
	if err != nil {
		return TransitionRecord{}, err
	}
	id, err := s.linkByOrd(link)
	if err != nil {
		return TransitionRecord{}, err
	}
	rep, err := s.reporterByOrd(reporter)
	if err != nil {
		return TransitionRecord{}, err
	}
	return TransitionRecord{
		Stream:   stream,
		Time:     time.Unix(0, timeNs).UTC(),
		Link:     id,
		Dir:      dir,
		Kind:     kind,
		Reporter: rep,
	}, nil
}

func (s *Store) matchTransition(q *Query, r TransitionRecord) bool {
	if q.link != nil && r.Link != *q.link {
		return false
	}
	if q.stream != nil && r.Stream != *q.stream {
		return false
	}
	if q.dir != nil && r.Dir != *q.dir {
		return false
	}
	if q.kind != nil && r.Kind != *q.kind {
		return false
	}
	if q.reporter != nil && r.Reporter != *q.reporter {
		return false
	}
	if q.window && (r.Time.Before(q.from) || !r.Time.Before(q.to)) {
		return false
	}
	return true
}

// Messages returns stored syslog lines matching the options, in
// capture order (segment by segment, each time-ordered — exactly the
// order the pipeline consumes them). A host filter uses the per-
// segment posting lists; a window uses each segment's sparse index.
func (s *Store) Messages(ctx context.Context, opts ...Option) ([]MessageRecord, error) {
	q := resolveQuery(opts)
	var out []MessageRecord
	for i, meta := range s.man.Messages {
		collect := func(tsMs int64, rec []byte) error {
			host, line, err := decodeMessageRecord(rec)
			if err != nil {
				return s.recordDamage(meta.Name, err)
			}
			name, err := s.hostByOrd(host)
			if err != nil {
				return s.recordDamage(meta.Name, err)
			}
			if q.host != nil && name != *q.host {
				return nil
			}
			if len(q.contains) > 0 && !bytes.Contains(line, q.contains) {
				return nil
			}
			t := time.UnixMilli(tsMs).UTC()
			if q.window && (t.Before(q.from) || !t.Before(q.to)) {
				return nil
			}
			out = append(out, MessageRecord{Time: t, Host: name, Line: string(line)})
			if q.full(len(out)) {
				return errStopScan
			}
			return nil
		}
		if q.full(len(out)) {
			break
		}
		// Skip segments whose span cannot intersect the window.
		if q.window && meta.Records > 0 &&
			(meta.LastMs < q.from.UnixMilli() || meta.FirstMs > q.to.UnixMilli()) {
			continue
		}
		if q.host != nil && s.msgPost[i] != nil {
			ord, ok := s.hostOrd[*q.host]
			if !ok {
				return out, nil
			}
			if err := s.fetchOrdinals(ctx, meta.Name, s.msgIdx[i], s.msgPost[i][ord], collect); err != nil {
				return nil, err
			}
			continue
		}
		stop := func(tsMs int64, rec []byte) error {
			if q.window && tsMs > q.to.UnixMilli() {
				return errStopScan
			}
			return collect(tsMs, rec)
		}
		if err := s.scan(ctx, meta.Name, s.msgIdx[i], q.window, q.from.UnixMilli()-1, stop); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Flaps groups one source's stored failures into flapping episodes
// using the flap gap the store was analyzed with — the starting point
// for "messages during flap F" workflows (take an episode's span,
// query Messages with that window). Accepts WithLink and WithWindow
// to narrow the failure set first.
func (s *Store) Flaps(ctx context.Context, src Source, opts ...Option) ([]trace.Episode, error) {
	recs, err := s.Failures(ctx, append(opts, WithSource(src))...)
	if err != nil {
		return nil, err
	}
	fs := make([]trace.Failure, len(recs))
	for i, r := range recs {
		fs[i] = r.Failure()
	}
	return trace.Episodes(fs, s.man.Params.FlapGap), nil
}

// errCatalog builds the decode error for a record referencing an
// ordinal past the manifest catalog.
func errCatalog(kind string, ord uint32) error {
	return fmt.Errorf("store: record references unknown %s ordinal %d", kind, ord)
}

// recordDamage handles a CRC-intact record that fails to decode
// (format or catalog mismatch): lenient stores account it as a skip,
// strict stores surface the error.
func (s *Store) recordDamage(name string, err error) error {
	if !s.lenient {
		return err
	}
	rep := &salvage.Report{}
	rep.Skip(0, "undecodable record")
	s.addSalvage(name, rep)
	return nil
}

// linkByOrd resolves a link catalog ordinal.
func (s *Store) linkByOrd(ord uint32) (topo.LinkID, error) {
	if int(ord) >= len(s.man.Links) {
		return "", errCatalog("link", ord)
	}
	return s.man.Links[ord].ID, nil
}

// reporterByOrd resolves a reporter catalog ordinal.
func (s *Store) reporterByOrd(ord uint32) (string, error) {
	if int(ord) >= len(s.man.Reporters) {
		return "", errCatalog("reporter", ord)
	}
	return s.man.Reporters[ord], nil
}

// hostByOrd resolves a host catalog ordinal.
func (s *Store) hostByOrd(ord uint32) (string, error) {
	if int(ord) >= len(s.man.Hosts) {
		return "", errCatalog("host", ord)
	}
	return s.man.Hosts[ord], nil
}
