package store

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func sampleManifest() *Manifest {
	return &Manifest{
		Format:      FormatName,
		Seed:        42,
		Start:       time.Date(2011, 1, 1, 0, 0, 0, 0, time.UTC),
		End:         time.Date(2011, 2, 1, 0, 0, 0, 0, time.UTC),
		ConfigFiles: 30,
		ISISUpdates: 1234,
		Params:      Params{Window: time.Minute, FlapGap: 10 * time.Minute},
		Links:       []LinkEntry{{ID: "core1:0-core2:0"}},
		Reporters:   []string{"core1", "core2"},
		Hosts:       []string{"core1"},
		Failures:    SegmentMeta{Records: 7, FirstMs: 100, LastMs: 900, MaxSpanMs: 50},
	}
}

func TestManifestWriteRead(t *testing.T) {
	dir := t.TempDir()
	if IsStoreDir(dir) {
		t.Error("empty directory claimed to be a store")
	}
	if err := writeManifestFile(dir, sampleManifest()); err != nil {
		t.Fatal(err)
	}
	if !IsStoreDir(dir) {
		t.Error("directory with a manifest not recognized as a store")
	}

	f, err := os.Open(filepath.Join(dir, ManifestName))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	m, err := ReadManifest(f)
	if err != nil {
		t.Fatal(err)
	}
	want := sampleManifest()
	if m.Seed != want.Seed || !m.Start.Equal(want.Start) || !m.End.Equal(want.End) ||
		m.Params.FlapGap != want.Params.FlapGap || m.Failures != want.Failures ||
		len(m.Links) != 1 || m.Links[0].ID != want.Links[0].ID {
		t.Errorf("round trip mismatch: %+v", m)
	}
}

func TestManifestRejectsUnknownFormat(t *testing.T) {
	m := sampleManifest()
	m.Format = "NFSTORE99"
	dir := t.TempDir()
	if err := writeManifestFile(dir, m); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(filepath.Join(dir, ManifestName))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ReadManifest(bytes.NewReader(raw)); err == nil ||
		!strings.Contains(err.Error(), "unknown format") {
		t.Errorf("strict: got %v, want unknown-format error", err)
	}
	if _, _, err := ReadManifestLenient(bytes.NewReader(raw)); err == nil ||
		!strings.Contains(err.Error(), "unknown format") {
		t.Errorf("lenient: got %v, want unknown-format error", err)
	}
}

func TestManifestLenientSkipsSurroundingGarbage(t *testing.T) {
	dir := t.TempDir()
	if err := writeManifestFile(dir, sampleManifest()); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(filepath.Join(dir, ManifestName))
	if err != nil {
		t.Fatal(err)
	}
	dirty := append([]byte("#### torn write residue\x00\x01"), raw...)
	dirty = append(dirty, []byte("\x00trailing garbage")...)

	if _, err := ReadManifest(bytes.NewReader(dirty)); err == nil {
		t.Error("strict read accepted a manifest with leading garbage")
	}
	m, rep, err := ReadManifestLenient(bytes.NewReader(dirty))
	if err != nil {
		t.Fatalf("lenient read: %v", err)
	}
	if m.Seed != 42 || m.Format != FormatName {
		t.Errorf("salvaged manifest mismatch: %+v", m)
	}
	if rep.Clean() {
		t.Error("salvage report claims the dirty manifest was clean")
	}
}

func TestManifestCorruptionInsideIsFatal(t *testing.T) {
	// The manifest holds the catalogs every record references by
	// ordinal, so damage inside the object must stay fatal even in
	// salvage mode — a guessed catalog misattributes every record.
	dir := t.TempDir()
	if err := writeManifestFile(dir, sampleManifest()); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(filepath.Join(dir, ManifestName))
	if err != nil {
		t.Fatal(err)
	}
	torn := raw[:len(raw)/2]
	if _, err := ReadManifest(bytes.NewReader(torn)); err == nil {
		t.Error("strict read accepted a torn manifest")
	}
	if _, _, err := ReadManifestLenient(bytes.NewReader(torn)); err == nil {
		t.Error("lenient read accepted a torn manifest")
	}
}
