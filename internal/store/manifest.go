package store

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"netfail/internal/core"
	"netfail/internal/salvage"
	"netfail/internal/topo"
	"netfail/internal/trace"
)

// LinkEntry is one link-catalog row: records reference links by their
// ordinal in this catalog.
type LinkEntry struct {
	ID    topo.LinkID    `json:"id"`
	Class topo.LinkClass `json:"class"`
}

// SegmentMeta describes one segment file.
type SegmentMeta struct {
	// Records counts the framed records.
	Records int64 `json:"records"`
	// FirstMs and LastMs span the segment's frame timestamps
	// (millisecond unix time, 0 when empty).
	FirstMs int64 `json:"first_ms"`
	LastMs  int64 `json:"last_ms"`
	// MaxSpanMs bounds how far a record's interval can extend past its
	// frame timestamp (failure durations); a window query seeks to
	// from−MaxSpanMs so failures that started before the window but
	// overlap it are not missed. Zero for point records.
	MaxSpanMs int64 `json:"max_span_ms,omitempty"`
}

// MessageSegmentMeta describes one numbered message segment.
type MessageSegmentMeta struct {
	// Name is the segment file name (messages-NNNN.seg).
	Name string `json:"name"`
	SegmentMeta
}

// Params records the analysis options the store was built with; a
// query layer answering flap or window questions must use the same
// values the pipeline did.
type Params struct {
	Window           time.Duration `json:"window_ns"`
	FlapGap          time.Duration `json:"flap_gap_ns"`
	MergeWindow      time.Duration `json:"merge_window_ns"`
	IncludeMultiLink bool          `json:"include_multi_link"`
}

// Tables holds the precomputed agreement tables — the paper's entire
// evaluation section, computed once at store-write time from the same
// Analysis the segments were written from.
type Tables struct {
	Table1 core.Table1 `json:"table1"`
	Table2 core.Table2 `json:"table2"`
	Table3 core.Table3 `json:"table3"`
	Table4 core.Table4 `json:"table4"`
	Table5 core.Table5 `json:"table5"`
	Table6 core.Table6 `json:"table6"`
	Table7 core.Table7 `json:"table7"`
}

// Table returns table n (1–7) or an error for an unknown number.
func (t *Tables) Table(n int) (any, error) {
	switch n {
	case 1:
		return t.Table1, nil
	case 2:
		return t.Table2, nil
	case 3:
		return t.Table3, nil
	case 4:
		return t.Table4, nil
	case 5:
		return t.Table5, nil
	case 6:
		return t.Table6, nil
	case 7:
		return t.Table7, nil
	}
	return nil, fmt.Errorf("store: no table %d (want 1-7)", n)
}

// Manifest ties a store directory together: format tag, campaign
// identity, analysis parameters, the catalogs records reference by
// ordinal, per-segment metadata, sanitize accounting, and the
// precomputed tables.
type Manifest struct {
	Format string `json:"format"`

	// Campaign identity.
	Seed            int64            `json:"seed"`
	Start           time.Time        `json:"start"`
	End             time.Time        `json:"end"`
	ListenerOffline []trace.Interval `json:"listener_offline,omitempty"`
	ConfigFiles     int              `json:"config_files"`
	ISISUpdates     int              `json:"isis_updates"`

	Params Params `json:"params"`

	// Catalogs: records name links, reporters, and hosts by ordinal.
	Links     []LinkEntry `json:"links"`
	Reporters []string    `json:"reporters"`
	Hosts     []string    `json:"hosts"`

	// Segment metadata.
	Failures    SegmentMeta          `json:"failures"`
	Transitions SegmentMeta          `json:"transitions"`
	Messages    []MessageSegmentMeta `json:"messages"`

	// Sanitization accounting carried over from the analysis (minus
	// the kept lists, which live in failures.seg).
	SyslogSanitize SanitizeCounts `json:"syslog_sanitize"`
	ISISSanitize   SanitizeCounts `json:"isis_sanitize"`

	Tables Tables `json:"tables"`
}

// SanitizeCounts is trace.SanitizeReport without the kept failure
// list (stored in failures.seg instead of duplicated here).
type SanitizeCounts struct {
	RemovedOffline  int           `json:"removed_offline"`
	LongChecked     int           `json:"long_checked"`
	LongRemoved     int           `json:"long_removed"`
	LongRemovedTime time.Duration `json:"long_removed_time_ns"`
}

// sanitizeCounts strips the kept list from a trace report.
func sanitizeCounts(r trace.SanitizeReport) SanitizeCounts {
	return SanitizeCounts{
		RemovedOffline:  r.RemovedOffline,
		LongChecked:     r.LongChecked,
		LongRemoved:     r.LongRemoved,
		LongRemovedTime: r.LongRemovedTime,
	}
}

// writeManifestFile writes the manifest atomically (temp file +
// rename, so a crash mid-write never leaves a plausible half
// manifest) — the same discipline as the capture manifest.
func writeManifestFile(dir string, m *Manifest) error {
	tmp, err := os.CreateTemp(dir, "manifest-*.tmp")
	if err != nil {
		return fmt.Errorf("store: manifest: %w", err)
	}
	tmpName := tmp.Name()
	enc := json.NewEncoder(tmp)
	enc.SetIndent("", "  ")
	err = enc.Encode(m)
	if serr := tmp.Sync(); err == nil {
		err = serr
	}
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("store: manifest: %w", err)
	}
	if err := os.Rename(tmpName, filepath.Join(dir, ManifestName)); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("store: manifest: %w", err)
	}
	return nil
}

// ReadManifest parses a store manifest strictly and validates the
// format tag.
func ReadManifest(r io.Reader) (*Manifest, error) {
	var m Manifest
	if err := json.NewDecoder(r).Decode(&m); err != nil {
		return nil, fmt.Errorf("store: manifest: %w", err)
	}
	if m.Format != FormatName {
		return nil, fmt.Errorf("store: manifest: unknown format %q (want %q)", m.Format, FormatName)
	}
	return &m, nil
}

// ReadManifestLenient parses a store manifest in salvage mode:
// garbage before or after the JSON object is skipped and accounted.
// The manifest holds the catalogs every record references, so
// corruption inside the object stays fatal even here — guessed
// catalogs would silently misattribute every record.
func ReadManifestLenient(r io.Reader) (*Manifest, *salvage.Report, error) {
	raw, err := io.ReadAll(r)
	if err != nil {
		return nil, nil, fmt.Errorf("store: manifest: %w", err)
	}
	obj, rep, ok := salvage.JSONObject(raw)
	if !ok {
		return nil, nil, fmt.Errorf("store: manifest: no complete JSON object found")
	}
	var m Manifest
	if err := json.Unmarshal(obj, &m); err != nil {
		return nil, nil, fmt.Errorf("store: manifest: %w", err)
	}
	if m.Format != FormatName {
		return nil, nil, fmt.Errorf("store: manifest: unknown format %q (want %q)", m.Format, FormatName)
	}
	return &m, rep, nil
}

// IsStoreDir reports whether dir looks like a store directory.
func IsStoreDir(dir string) bool {
	st, err := os.Stat(filepath.Join(dir, ManifestName))
	return err == nil && !st.IsDir()
}
