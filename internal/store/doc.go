// Package store implements the indexed failure store: a persistent,
// queryable form of one analyzed campaign, written once at the end of
// an analysis run and then served many times.
//
// The batch pipeline answers every question — failures on a link,
// transitions in a window, messages during a flap — by re-running the
// whole extraction over the capture. The store persists the pipeline's
// outputs in time-ordered, CRC-framed binary segments (the same
// `A5 5A|len|crc` framing as the capture shards and the checkpoint
// WAL) with sparse time indexes and per-link/per-host posting lists,
// so a window or per-link query reads a few hundred frames instead of
// the campaign.
//
// On-disk layout of a store directory:
//
//	store/
//	  manifest.json        params, catalogs, counts, precomputed tables
//	  failures.seg/.idx    sanitized failures, both sources, start-ordered
//	  failures.pst         link → failure-ordinal posting lists
//	  transitions.seg/.idx filtered transition streams, time-ordered
//	  transitions.pst      link → transition-ordinal posting lists
//	  messages-0000.seg/.idx  raw syslog lines, one segment per capture
//	  messages-0000.pst       shard, host → message-ordinal postings
//
// Records reference links, reporters, and hosts by ordinal into the
// manifest's catalogs. Segments reuse the capture reader/writer pair,
// inheriting its strict/lenient modes and salvage accounting; the
// posting files have their own framed format (postings.go) with the
// same convention: the strict reader fails with an offset-accurate
// error, the lenient reader resynchronizes and accounts every skip in
// a salvage.Report. Both indexes and postings are advisory — a store
// with damaged or missing index files still answers every query by
// scanning.
//
// Queries (query.go) are context-first with functional options,
// mirroring the public netfail API. Every answer is defined to equal
// the corresponding slice of a fresh full-pipeline run — the oracle
// the root-package store tests pin.
package store
