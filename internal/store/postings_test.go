package store

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func samplePostings() map[uint32][]uint32 {
	return map[uint32][]uint32{
		0: {0, 3, 7, 9},
		2: {1, 2, 4},
		5: {5, 6, 8, 10, 11},
		9: {12},
	}
}

// pstFrameStart computes the file offset where key's frame begins,
// mirroring the writer's layout: header, then one frame per key in
// increasing key order.
func pstFrameStart(lists map[uint32][]uint32, key uint32) int64 {
	keys := make([]uint32, 0, len(lists))
	for k := range lists {
		keys = append(keys, k)
	}
	for i := 0; i < len(keys); i++ {
		for j := i + 1; j < len(keys); j++ {
			if keys[j] < keys[i] {
				keys[i], keys[j] = keys[j], keys[i]
			}
		}
	}
	off := int64(len(pstHeader))
	for _, k := range keys {
		if k == key {
			return off
		}
		off += int64(pstFrameOverhead + 4 + 4*len(lists[k]))
	}
	panic("key not in lists")
}

func writeSamplePostings(t *testing.T) (string, map[uint32][]uint32) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "sample.pst")
	lists := samplePostings()
	if err := writePostings(path, lists); err != nil {
		t.Fatal(err)
	}
	return path, lists
}

func TestPostingsRoundTrip(t *testing.T) {
	path, lists := writeSamplePostings(t)

	got, rep, err := loadPostings(path, false)
	if err != nil {
		t.Fatalf("strict load: %v", err)
	}
	if rep != nil {
		t.Errorf("strict load returned a salvage report: %+v", rep)
	}
	if !reflect.DeepEqual(got, lists) {
		t.Errorf("strict round trip:\n got %v\nwant %v", got, lists)
	}

	got, rep, err = loadPostings(path, true)
	if err != nil {
		t.Fatalf("lenient load: %v", err)
	}
	if !reflect.DeepEqual(got, lists) {
		t.Errorf("lenient round trip:\n got %v\nwant %v", got, lists)
	}
	if !rep.Clean() || rep.Kept != len(lists) {
		t.Errorf("lenient report on clean file: %s", rep)
	}
}

func TestPostingsMissingFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "absent.pst")
	for _, lenient := range []bool{false, true} {
		_, _, err := loadPostings(path, lenient)
		if !errors.Is(err, ErrNoPostings) {
			t.Errorf("lenient=%v: got %v, want ErrNoPostings", lenient, err)
		}
	}
}

func TestPostingsStrictCorruptionIsOffsetAccurate(t *testing.T) {
	path, lists := writeSamplePostings(t)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one payload byte inside the second frame (key 2): the frame
	// boundary stays intact but the CRC no longer matches.
	frameStart := pstFrameStart(lists, 2)
	data[frameStart+int64(pstFrameOverhead)+4] ^= 0xFF

	_, err = ReadPostings(bytes.NewReader(data), "t.pst")
	if err == nil {
		t.Fatal("strict read of corrupted postings succeeded")
	}
	want := fmt.Sprintf("postings frame 2 at offset %d: crc mismatch", frameStart)
	if !strings.Contains(err.Error(), want) {
		t.Errorf("error %q does not pin the damage: want substring %q", err, want)
	}
}

func TestPostingsLenientSalvagesCRCDamage(t *testing.T) {
	path, lists := writeSamplePostings(t)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[pstFrameStart(lists, 2)+int64(pstFrameOverhead)+4] ^= 0xFF

	got, rep, err := ReadPostingsLenient(bytes.NewReader(data), "t.pst")
	if err != nil {
		t.Fatalf("lenient read: %v", err)
	}
	if rep.Skipped != 1 || rep.Reasons["crc mismatch"] != 1 {
		t.Errorf("salvage accounting: %s", rep)
	}
	if rep.Kept != len(lists)-1 {
		t.Errorf("kept %d frames, want %d", rep.Kept, len(lists)-1)
	}
	if _, ok := got[2]; ok {
		t.Error("damaged key 2 survived salvage")
	}
	for _, k := range []uint32{0, 5, 9} {
		if !reflect.DeepEqual(got[k], lists[k]) {
			t.Errorf("key %d: got %v, want %v", k, got[k], lists[k])
		}
	}
}

func TestPostingsLenientResyncsAfterBadSync(t *testing.T) {
	path, lists := writeSamplePostings(t)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Destroy the second frame's sync marker: the lenient reader must
	// scan forward to the next marker instead of giving up.
	data[pstFrameStart(lists, 2)] = 0x00

	if _, err := ReadPostings(bytes.NewReader(data), "t.pst"); err == nil ||
		!strings.Contains(err.Error(), "bad sync marker") {
		t.Errorf("strict read: got %v, want bad sync marker error", err)
	}

	got, rep, err := ReadPostingsLenient(bytes.NewReader(data), "t.pst")
	if err != nil {
		t.Fatalf("lenient read: %v", err)
	}
	if rep.Clean() {
		t.Error("salvage report claims a clean file")
	}
	if _, ok := got[2]; ok {
		t.Error("frame with destroyed sync marker survived")
	}
	// Whatever resync recovered must agree with the clean file: a
	// salvaged postings list may lose keys, never invent them.
	for k, ords := range got {
		if !reflect.DeepEqual(ords, lists[k]) {
			t.Errorf("key %d: got %v, want %v", k, ords, lists[k])
		}
	}
	if !reflect.DeepEqual(got[0], lists[0]) {
		t.Errorf("frame before the damage lost: got %v", got[0])
	}
}

func TestPostingsTruncatedTail(t *testing.T) {
	path, lists := writeSamplePostings(t)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Cut the final frame (key 9) in half.
	data = data[:pstFrameStart(lists, 9)+5]

	if _, err := ReadPostings(bytes.NewReader(data), "t.pst"); err == nil ||
		!strings.Contains(err.Error(), "truncated") {
		t.Errorf("strict read: got %v, want truncation error", err)
	}

	got, rep, err := ReadPostingsLenient(bytes.NewReader(data), "t.pst")
	if err != nil {
		t.Fatalf("lenient read: %v", err)
	}
	if rep.Kept != 3 || rep.Skipped == 0 {
		t.Errorf("salvage accounting: %s", rep)
	}
	for _, k := range []uint32{0, 2, 5} {
		if !reflect.DeepEqual(got[k], lists[k]) {
			t.Errorf("key %d: got %v, want %v", k, got[k], lists[k])
		}
	}
}

// appendPstFrame frames one posting list with a valid CRC — the tool
// for forging streams the writer would never produce.
func appendPstFrame(b []byte, key uint32, ords []uint32) []byte {
	payload := binary.LittleEndian.AppendUint32(nil, key)
	for _, o := range ords {
		payload = binary.LittleEndian.AppendUint32(payload, o)
	}
	b = append(b, pstSync0, pstSync1)
	b = binary.LittleEndian.AppendUint32(b, uint32(len(payload)))
	b = binary.LittleEndian.AppendUint32(b, crc32.ChecksumIEEE(payload))
	return append(b, payload...)
}

func TestPostingsRejectsNonMonotoneFrames(t *testing.T) {
	// Valid CRCs, rotten semantics: keys out of order, then ordinals
	// out of order. Both must fail strict and be skipped lenient —
	// CRC-valid forgeries must not poison query plans.
	cases := []struct {
		name string
		data []byte
	}{
		{"decreasing keys", appendPstFrame(appendPstFrame([]byte(pstHeader), 5, []uint32{1, 2}), 3, []uint32{4})},
		{"decreasing ordinals", appendPstFrame([]byte(pstHeader), 1, []uint32{3, 1})},
		{"duplicate key", appendPstFrame(appendPstFrame([]byte(pstHeader), 5, []uint32{1}), 5, []uint32{2})},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ReadPostings(bytes.NewReader(tc.data), "t.pst")
			if err == nil || !strings.Contains(err.Error(), "implausible postings frame") {
				t.Errorf("strict: got %v, want implausible-frame error", err)
			}
			_, rep, err := ReadPostingsLenient(bytes.NewReader(tc.data), "t.pst")
			if err != nil {
				t.Fatalf("lenient: %v", err)
			}
			if rep.Reasons["implausible postings frame"] == 0 {
				t.Errorf("salvage accounting: %s", rep)
			}
		})
	}
}

func TestPostingsBadHeader(t *testing.T) {
	data := []byte("GARBAGE\nnot a postings file")
	if _, err := ReadPostings(bytes.NewReader(data), "t.pst"); err == nil ||
		!strings.Contains(err.Error(), "bad postings header") {
		t.Errorf("strict: got %v, want bad-header error", err)
	}
	got, rep, err := ReadPostingsLenient(bytes.NewReader(data), "t.pst")
	if err != nil {
		t.Fatalf("lenient: %v", err)
	}
	if len(got) != 0 || rep.Clean() {
		t.Errorf("lenient bad header: got %v, report %s", got, rep)
	}
}
