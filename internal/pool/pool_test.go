package pool

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestResolve(t *testing.T) {
	if got := Resolve(0); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Resolve(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Resolve(-3); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Resolve(-3) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Resolve(7); got != 7 {
		t.Errorf("Resolve(7) = %d, want 7", got)
	}
}

func TestForEachCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 4, 16, 100} {
		const n = 57
		counts := make([]int32, n)
		ForEach(n, workers, func(i int) { atomic.AddInt32(&counts[i], 1) })
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, c)
			}
		}
	}
}

func TestForEachEmpty(t *testing.T) {
	ran := false
	ForEach(0, 8, func(int) { ran = true })
	if ran {
		t.Error("ForEach(0, ...) invoked fn")
	}
}

func TestStages(t *testing.T) {
	var a, b, c int
	Stages(4,
		func() { a = 1 },
		func() { b = 2 },
		func() { c = 3 },
	)
	if a != 1 || b != 2 || c != 3 {
		t.Errorf("stages did not all run: %d %d %d", a, b, c)
	}
}
