// Package pool provides the bounded worker pool behind the parallel
// analysis pipeline. The §3.4 methodology is embarrassingly parallel —
// every link's transition stream reconstructs independently, and the
// report's tables are independent reductions — so every sharded stage
// reduces to the same shape: run fn(i) for i in [0, n) across at most
// `workers` goroutines, with each task writing only state owned by its
// index. Determinism is preserved by construction: tasks never share
// mutable state, and callers merge the indexed results in a fixed
// order afterwards.
package pool

import (
	"runtime"
	"sync"
)

// Resolve maps a Parallelism knob to a worker count: values <= 0 mean
// "one worker per available CPU" (runtime.GOMAXPROCS).
func Resolve(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// ForEach runs fn(i) for every i in [0, n) using at most workers
// goroutines and returns when all calls have completed. With workers
// <= 1 (or n <= 1) it degenerates to a plain sequential loop on the
// calling goroutine — the byte-identical reference path. fn must
// confine its writes to state owned by index i.
//
//netfail:hotpath
func ForEach(n, workers int, fn func(i int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	tasks := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range tasks {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		tasks <- i
	}
	close(tasks)
	wg.Wait()
}

// Stages runs a set of independent pipeline stages concurrently across
// at most workers goroutines. It is ForEach specialized to
// heterogeneous closures: each stage owns its own result slot.
func Stages(workers int, stages ...func()) {
	ForEach(len(stages), workers, func(i int) { stages[i]() })
}

// ForEachWorker is ForEach with the executing worker's slot number
// passed to fn. Slots are dense in [0, workers): callers index
// per-worker scratch — transition accumulators, line buffers, reused
// message structs — by w and reuse it across the many tasks each
// worker runs, which is what makes n >> workers loops amortized
// allocation-free. Determinism still requires fn to confine its
// *output* writes to state owned by task index i; only scratch may be
// keyed by w. With workers <= 1 every task runs with w == 0.
//
//netfail:hotpath
func ForEachWorker(n, workers int, fn func(w, i int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(0, i)
		}
		return
	}
	tasks := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			for i := range tasks {
				fn(w, i)
			}
		}(w)
	}
	for i := 0; i < n; i++ {
		tasks <- i
	}
	close(tasks)
	wg.Wait()
}
