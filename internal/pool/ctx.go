package pool

import (
	"context"
	"strconv"
	"sync"
	"sync/atomic"

	"netfail/internal/obs"
)

// ForEachCtx is ForEach with cancellation and observability. It runs
// fn(ctx, i) for every i in [0, n) using at most workers goroutines
// and returns the context's error if ctx is canceled before all tasks
// have been dispatched. Tasks already running when cancellation hits
// are allowed to finish — fn is never interrupted mid-index — so a
// non-nil return means "some suffix of [0, n) never ran", never "a
// task half-ran".
//
// With workers <= 1 (or n <= 1) it degenerates to a sequential loop
// that checks ctx between iterations: the byte-identical reference
// path. When a tracer is attached to ctx and the pool actually fans
// out, each worker goroutine runs under its own "worker[w]" child
// span; per-task completion is reported as ShardDone progress events
// and counted in the pool.tasks.ran counter.
//
//netfail:hotpath
func ForEachCtx(ctx context.Context, n, workers int, fn func(ctx context.Context, i int)) error {
	if workers > n {
		workers = n
	}
	obs.Add(ctx, "pool.tasks.queued", int64(n))
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			fn(ctx, i)
			obs.Add(ctx, "pool.tasks.ran", 1)
			obs.Shard(ctx, i+1, n)
		}
		return nil
	}
	tasks := make(chan int)
	var ran atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			wctx, span := obs.StartSpan(ctx, "worker["+strconv.Itoa(w)+"]")
			defer span.End()
			for i := range tasks {
				fn(wctx, i)
				span.Add("tasks", 1)
				obs.Shard(ctx, int(ran.Add(1)), n)
			}
		}(w)
	}
	err := error(nil)
	for i := 0; i < n; i++ {
		select {
		case tasks <- i:
		case <-ctx.Done():
			err = ctx.Err()
			i = n // stop dispatching; workers drain and exit
		}
	}
	close(tasks)
	wg.Wait()
	obs.Add(ctx, "pool.tasks.ran", ran.Load())
	return err
}

// StagesCtx runs a set of independent pipeline stages concurrently
// across at most workers goroutines, stopping dispatch if ctx is
// canceled. It is ForEachCtx specialized to heterogeneous closures.
func StagesCtx(ctx context.Context, workers int, stages ...func(ctx context.Context)) error {
	return ForEachCtx(ctx, len(stages), workers, func(ctx context.Context, i int) { stages[i](ctx) })
}

// ForEachWorkerCtx is ForEachCtx with the executing worker's slot
// number passed to fn, for loops that reuse per-worker scratch across
// tasks (see ForEachWorker). Slots are dense in [0, workers); with
// workers <= 1 every task runs with w == 0 on the calling goroutine,
// checking ctx between iterations.
//
//netfail:hotpath
func ForEachWorkerCtx(ctx context.Context, n, workers int, fn func(ctx context.Context, w, i int)) error {
	if workers > n {
		workers = n
	}
	obs.Add(ctx, "pool.tasks.queued", int64(n))
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			fn(ctx, 0, i)
			obs.Add(ctx, "pool.tasks.ran", 1)
			obs.Shard(ctx, i+1, n)
		}
		return nil
	}
	tasks := make(chan int)
	var ran atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			wctx, span := obs.StartSpan(ctx, "worker["+strconv.Itoa(w)+"]")
			defer span.End()
			for i := range tasks {
				fn(wctx, w, i)
				span.Add("tasks", 1)
				obs.Shard(ctx, int(ran.Add(1)), n)
			}
		}(w)
	}
	err := error(nil)
	for i := 0; i < n; i++ {
		select {
		case tasks <- i:
		case <-ctx.Done():
			err = ctx.Err()
			i = n // stop dispatching; workers drain and exit
		}
	}
	close(tasks)
	wg.Wait()
	obs.Add(ctx, "pool.tasks.ran", ran.Load())
	return err
}
