package tickets

import (
	"encoding/json"
	"fmt"
	"io"
)

// WriteJSON serializes the corpus.
func WriteJSON(w io.Writer, ts []Ticket) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(ts)
}

// ReadJSON parses a corpus written by WriteJSON.
func ReadJSON(r io.Reader) ([]Ticket, error) {
	var ts []Ticket
	if err := json.NewDecoder(r).Decode(&ts); err != nil {
		return nil, fmt.Errorf("tickets: %w", err)
	}
	return ts, nil
}
