// Package tickets models the operator trouble-ticket system the paper
// uses as a secondary verification source (§4.2): long-lasting
// failures are reliably chronicled in tickets, so a syslog failure
// exceeding 24 hours with no corroborating ticket is almost certainly
// an artifact of lost messages. The corpus is generated from ground
// truth with realistic coverage gaps — operators do not open tickets
// for short blips.
package tickets

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"netfail/internal/topo"
	"netfail/internal/trace"
)

// Ticket is one trouble ticket.
type Ticket struct {
	ID     int
	Link   topo.LinkID
	Opened time.Time
	Closed time.Time
	// Summary is the operator's one-line description.
	Summary string
}

// Params controls corpus generation.
type Params struct {
	// MinDuration is the shortest outage operators bother to ticket.
	MinDuration time.Duration
	// CoverageLong is the probability a >24 h outage is ticketed
	// (near 1: the paper relies on long outages being chronicled);
	// CoverageMedium applies between MinDuration and 24 h.
	CoverageLong   float64
	CoverageMedium float64
	// OpenDelayMax and CloseSlackMax blur the ticket boundaries
	// around the true outage.
	OpenDelayMax  time.Duration
	CloseSlackMax time.Duration
}

// DefaultParams returns realistic coverage.
func DefaultParams() Params {
	return Params{
		MinDuration:    30 * time.Minute,
		CoverageLong:   0.98,
		CoverageMedium: 0.6,
		OpenDelayMax:   20 * time.Minute,
		CloseSlackMax:  40 * time.Minute,
	}
}

// Generate builds a ticket corpus from the true outage list.
func Generate(seed int64, truth []trace.Failure, p Params) []Ticket {
	rng := rand.New(rand.NewSource(seed))
	var out []Ticket
	for _, f := range truth {
		d := f.Duration()
		if d < p.MinDuration {
			continue
		}
		coverage := p.CoverageMedium
		if d > 24*time.Hour {
			coverage = p.CoverageLong
		}
		if rng.Float64() >= coverage {
			continue
		}
		opened := f.Start.Add(time.Duration(rng.Int63n(int64(p.OpenDelayMax) + 1)))
		closed := f.End.Add(time.Duration(rng.Int63n(int64(p.CloseSlackMax) + 1)))
		out = append(out, Ticket{
			ID:      len(out) + 1,
			Link:    f.Link,
			Opened:  opened,
			Closed:  closed,
			Summary: fmt.Sprintf("link %s down %s, restored %s", f.Link, f.Start.Format(time.RFC3339), f.End.Format(time.RFC3339)),
		})
	}
	return out
}

// Index answers verification queries against a corpus.
type Index struct {
	byLink map[topo.LinkID][]Ticket
}

// NewIndex builds the per-link lookup.
func NewIndex(ts []Ticket) *Index {
	idx := &Index{byLink: make(map[topo.LinkID][]Ticket)}
	for _, t := range ts {
		idx.byLink[t.Link] = append(idx.byLink[t.Link], t)
	}
	for _, list := range idx.byLink {
		sort.Slice(list, func(i, j int) bool { return list[i].Opened.Before(list[j].Opened) })
	}
	return idx
}

// Len returns the corpus size.
func (ix *Index) Len() int {
	n := 0
	for _, l := range ix.byLink {
		n += len(l)
	}
	return n
}

// Verify reports whether the ticket record corroborates the claimed
// failure: some ticket on the same link must cover at least half of
// the failure's span. A spurious multi-day "failure" assembled from
// lost messages spans mostly healthy time and finds no such ticket.
func (ix *Index) Verify(f trace.Failure) bool {
	for _, t := range ix.byLink[f.Link] {
		if t.Opened.After(f.End) {
			break
		}
		overlap := minTime(t.Closed, f.End).Sub(maxTime(t.Opened, f.Start))
		if overlap*2 >= f.Duration() {
			return true
		}
	}
	return false
}

// Search returns tickets on a link intersecting [start, end].
func (ix *Index) Search(link topo.LinkID, start, end time.Time) []Ticket {
	var out []Ticket
	for _, t := range ix.byLink[link] {
		if t.Opened.After(end) {
			break
		}
		if t.Closed.Before(start) {
			continue
		}
		out = append(out, t)
	}
	return out
}

func minTime(a, b time.Time) time.Time {
	if a.Before(b) {
		return a
	}
	return b
}

func maxTime(a, b time.Time) time.Time {
	if a.After(b) {
		return a
	}
	return b
}
