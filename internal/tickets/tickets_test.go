package tickets

import (
	"testing"
	"time"

	"netfail/internal/topo"
	"netfail/internal/trace"
)

const link = topo.LinkID("a:p|b:p")

func at(h int) time.Time {
	return time.Date(2011, 3, 1, 0, 0, 0, 0, time.UTC).Add(time.Duration(h) * time.Hour)
}

func truth(startH, endH int) trace.Failure {
	return trace.Failure{Link: link, Start: at(startH), End: at(endH)}
}

func TestGenerateCoverage(t *testing.T) {
	var failures []trace.Failure
	// 200 long failures (2 days each) and 200 blips.
	for i := 0; i < 200; i++ {
		s := i * 100
		failures = append(failures,
			trace.Failure{Link: link, Start: at(s), End: at(s + 48)},
			trace.Failure{Link: link, Start: at(s + 60), End: at(s + 60).Add(5 * time.Second)},
		)
	}
	ts := Generate(1, failures, DefaultParams())
	if len(ts) < 180 || len(ts) > 200 {
		t.Errorf("tickets = %d, want ~196 (98%% of 200 long, no blips)", len(ts))
	}
	for _, tk := range ts {
		if tk.Closed.Before(tk.Opened) {
			t.Errorf("ticket %d closed before opened", tk.ID)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	failures := []trace.Failure{truth(0, 48), truth(100, 130)}
	a := Generate(7, failures, DefaultParams())
	b := Generate(7, failures, DefaultParams())
	if len(a) != len(b) {
		t.Fatal("nondeterministic")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("nondeterministic ticket content")
		}
	}
}

func TestVerifyGenuineLongFailure(t *testing.T) {
	// A real 2-day outage with its ticket.
	real := truth(0, 48)
	ts := Generate(1, []trace.Failure{real}, Params{
		MinDuration: time.Minute, CoverageLong: 1, CoverageMedium: 1,
		OpenDelayMax: time.Minute, CloseSlackMax: time.Minute,
	})
	ix := NewIndex(ts)
	if !ix.Verify(real) {
		t.Error("genuine failure not verified")
	}
	// Syslog saw it slightly shifted: still verified.
	shifted := trace.Failure{Link: link, Start: real.Start.Add(time.Minute), End: real.End.Add(-time.Minute)}
	if !ix.Verify(shifted) {
		t.Error("slightly shifted failure not verified")
	}
}

func TestVerifyRejectsSpuriousMergedFailure(t *testing.T) {
	// Two real 10-minute outages a week apart, each ticketed; syslog
	// lost the intervening messages and reports one week-long outage.
	f1 := trace.Failure{Link: link, Start: at(0), End: at(0).Add(10 * time.Minute)}
	f2 := trace.Failure{Link: link, Start: at(168), End: at(168).Add(10 * time.Minute)}
	ts := Generate(1, []trace.Failure{f1, f2}, Params{
		MinDuration: time.Minute, CoverageLong: 1, CoverageMedium: 1,
		OpenDelayMax: time.Minute, CloseSlackMax: time.Minute,
	})
	ix := NewIndex(ts)
	spurious := trace.Failure{Link: link, Start: f1.Start, End: f2.End}
	if ix.Verify(spurious) {
		t.Error("week-long spurious failure verified against 10-minute tickets")
	}
}

func TestVerifyWrongLink(t *testing.T) {
	real := truth(0, 48)
	ix := NewIndex(Generate(1, []trace.Failure{real}, Params{
		MinDuration: time.Minute, CoverageLong: 1, CoverageMedium: 1,
		OpenDelayMax: time.Minute, CloseSlackMax: time.Minute,
	}))
	other := trace.Failure{Link: topo.LinkID("x:p|y:p"), Start: real.Start, End: real.End}
	if ix.Verify(other) {
		t.Error("failure on unrelated link verified")
	}
}

func TestSearch(t *testing.T) {
	ts := Generate(1, []trace.Failure{truth(0, 48), truth(200, 210)}, Params{
		MinDuration: time.Minute, CoverageLong: 1, CoverageMedium: 1,
		OpenDelayMax: time.Minute, CloseSlackMax: time.Minute,
	})
	ix := NewIndex(ts)
	if got := ix.Search(link, at(10), at(20)); len(got) != 1 {
		t.Errorf("Search hit = %d, want 1", len(got))
	}
	if got := ix.Search(link, at(100), at(150)); len(got) != 0 {
		t.Errorf("Search miss = %d, want 0", len(got))
	}
	if ix.Len() != 2 {
		t.Errorf("Len = %d", ix.Len())
	}
}

func TestDefaultParamsSane(t *testing.T) {
	p := DefaultParams()
	if p.MinDuration <= 0 || p.CoverageLong <= p.CoverageMedium || p.CoverageLong > 1 {
		t.Errorf("params = %+v", p)
	}
}

func TestGenerateEmptyTruth(t *testing.T) {
	if got := Generate(1, nil, DefaultParams()); len(got) != 0 {
		t.Errorf("tickets from nothing: %v", got)
	}
	ix := NewIndex(nil)
	if ix.Len() != 0 || ix.Verify(truth(0, 48)) {
		t.Error("empty index misbehaves")
	}
}
