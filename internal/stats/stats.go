// Package stats provides the small statistical toolkit the comparison
// needs: order statistics, empirical CDFs, and the two-sample
// Kolmogorov–Smirnov goodness-of-fit test the paper uses to decide
// which failure metrics syslog reproduces faithfully (§4.2).
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrNoData is returned by functions that cannot operate on an empty
// sample.
var ErrNoData = errors.New("stats: empty sample")

// Summary holds the three order statistics the paper reports for every
// metric in Table 5.
type Summary struct {
	Median float64
	Mean   float64
	P95    float64
	N      int
}

// Summarize computes median, mean, and 95th percentile of the sample.
func Summarize(sample []float64) (Summary, error) {
	if len(sample) == 0 {
		return Summary{}, ErrNoData
	}
	sorted := append([]float64(nil), sample...)
	sort.Float64s(sorted)
	var sum float64
	for _, v := range sorted {
		sum += v
	}
	return Summary{
		Median: quantileSorted(sorted, 0.5),
		Mean:   sum / float64(len(sorted)),
		P95:    quantileSorted(sorted, 0.95),
		N:      len(sorted),
	}, nil
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of the sample using
// linear interpolation between order statistics.
func Quantile(sample []float64, q float64) (float64, error) {
	if len(sample) == 0 {
		return 0, ErrNoData
	}
	sorted := append([]float64(nil), sample...)
	sort.Float64s(sorted)
	return quantileSorted(sorted, q), nil
}

func quantileSorted(sorted []float64, q float64) float64 {
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// ECDF is an empirical cumulative distribution function.
type ECDF struct {
	// xs holds the sorted sample.
	xs []float64
}

// NewECDF builds an ECDF over the sample. The sample is copied.
func NewECDF(sample []float64) *ECDF {
	xs := append([]float64(nil), sample...)
	sort.Float64s(xs)
	return &ECDF{xs: xs}
}

// At returns F(x) = P[X ≤ x].
func (e *ECDF) At(x float64) float64 {
	if len(e.xs) == 0 {
		return 0
	}
	// Count of values ≤ x.
	n := sort.Search(len(e.xs), func(i int) bool { return e.xs[i] > x })
	return float64(n) / float64(len(e.xs))
}

// Len returns the sample size.
func (e *ECDF) Len() int { return len(e.xs) }

// Points returns (x, F(x)) pairs suitable for plotting a CDF curve,
// one per distinct sample value.
func (e *ECDF) Points() (xs, ys []float64) {
	n := len(e.xs)
	for i := 0; i < n; {
		j := i
		for j < n && e.xs[j] == e.xs[i] {
			j++
		}
		xs = append(xs, e.xs[i])
		ys = append(ys, float64(j)/float64(n))
		i = j
	}
	return xs, ys
}

// KSResult is the outcome of a two-sample Kolmogorov–Smirnov test.
type KSResult struct {
	// D is the KS statistic: the maximum distance between the two
	// empirical CDFs.
	D float64
	// PValue is the asymptotic two-tailed p-value.
	PValue float64
	// N1, N2 are the sample sizes.
	N1, N2 int
}

// Consistent reports whether the test fails to reject the null
// hypothesis (same distribution) at the given significance level,
// i.e. whether the two data sources produce statistically consistent
// data for this metric in the paper's sense.
func (r KSResult) Consistent(alpha float64) bool { return r.PValue > alpha }

// KSTest runs the two-tailed two-sample Kolmogorov–Smirnov test.
func KSTest(a, b []float64) (KSResult, error) {
	if len(a) == 0 || len(b) == 0 {
		return KSResult{}, ErrNoData
	}
	x := append([]float64(nil), a...)
	y := append([]float64(nil), b...)
	sort.Float64s(x)
	sort.Float64s(y)

	var d float64
	i, j := 0, 0
	n1, n2 := float64(len(x)), float64(len(y))
	for i < len(x) && j < len(y) {
		v := math.Min(x[i], y[j])
		for i < len(x) && x[i] <= v {
			i++
		}
		for j < len(y) && y[j] <= v {
			j++
		}
		diff := math.Abs(float64(i)/n1 - float64(j)/n2)
		if diff > d {
			d = diff
		}
	}
	ne := n1 * n2 / (n1 + n2)
	lambda := (math.Sqrt(ne) + 0.12 + 0.11/math.Sqrt(ne)) * d
	return KSResult{D: d, PValue: ksQ(lambda), N1: len(x), N2: len(y)}, nil
}

// ksQ evaluates the Kolmogorov distribution tail
// Q(λ) = 2 Σ_{k≥1} (−1)^{k−1} e^{−2k²λ²}, the asymptotic p-value.
func ksQ(lambda float64) float64 {
	if lambda <= 0 {
		return 1
	}
	const eps1, eps2 = 1e-6, 1e-16
	sum, prevTerm := 0.0, 0.0
	sign := 1.0
	for k := 1; k <= 100; k++ {
		term := sign * 2 * math.Exp(-2*float64(k*k)*lambda*lambda)
		sum += term
		if math.Abs(term) <= eps1*prevTerm || math.Abs(term) <= eps2*sum {
			if sum < 0 {
				return 0
			}
			if sum > 1 {
				return 1
			}
			return sum
		}
		prevTerm = math.Abs(term)
		sign = -sign
	}
	return 1 // failed to converge: no evidence against H0
}

// Histogram bins the sample into equal-width bins over [min, max].
type Histogram struct {
	Min, Max float64
	Counts   []int
	N        int
}

// NewHistogram builds a histogram with the given number of bins.
func NewHistogram(sample []float64, bins int, min, max float64) *Histogram {
	h := &Histogram{Min: min, Max: max, Counts: make([]int, bins)}
	if bins == 0 || max <= min {
		return h
	}
	width := (max - min) / float64(bins)
	for _, v := range sample {
		if v < min || v > max {
			continue
		}
		i := int((v - min) / width)
		if i >= bins {
			i = bins - 1
		}
		h.Counts[i]++
		h.N++
	}
	return h
}

// Mean returns the arithmetic mean, or 0 for an empty sample.
func Mean(sample []float64) float64 {
	if len(sample) == 0 {
		return 0
	}
	var sum float64
	for _, v := range sample {
		sum += v
	}
	return sum / float64(len(sample))
}
