package stats

import (
	"math/rand"
	"testing"
)

func benchSamples(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	s := make([]float64, n)
	for i := range s {
		s[i] = rng.ExpFloat64() * 100
	}
	return s
}

func BenchmarkKSTest(b *testing.B) {
	b.ReportAllocs()
	a := benchSamples(10000, 1)
	c := benchSamples(10000, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := KSTest(a, c); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSummarize(b *testing.B) {
	b.ReportAllocs()
	s := benchSamples(10000, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Summarize(s); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkECDF(b *testing.B) {
	b.ReportAllocs()
	s := benchSamples(10000, 4)
	e := NewECDF(s)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.At(float64(i % 500))
	}
}
