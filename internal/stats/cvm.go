package stats

import (
	"math"
	"sort"
)

// CvMResult is the outcome of a two-sample Cramér–von Mises test.
// Where Kolmogorov–Smirnov keys on the single largest CDF gap, CvM
// integrates the squared gap over the whole distribution, so the two
// tests disagreeing flags a verdict that hinges on one region of the
// distribution. The comparison uses it to corroborate the paper's
// Table 5 consistency calls.
type CvMResult struct {
	// T is the Anderson (1962) two-sample statistic.
	T float64
	// PValue is the asymptotic p-value (Anderson–Darling's limiting
	// distribution approximation per Csörgő & Faraway 1996).
	PValue float64
	N1, N2 int
}

// Consistent reports whether the test fails to reject at alpha.
func (r CvMResult) Consistent(alpha float64) bool { return r.PValue > alpha }

// CvMTest runs the two-sample Cramér–von Mises test (Anderson's
// form).
func CvMTest(a, b []float64) (CvMResult, error) {
	if len(a) == 0 || len(b) == 0 {
		return CvMResult{}, ErrNoData
	}
	n, m := len(a), len(b)
	x := append([]float64(nil), a...)
	y := append([]float64(nil), b...)
	sort.Float64s(x)
	sort.Float64s(y)

	// Ranks of each sample in the pooled ordering (midranks for
	// ties).
	type obs struct {
		v    float64
		from int
	}
	pooled := make([]obs, 0, n+m)
	for _, v := range x {
		pooled = append(pooled, obs{v, 0})
	}
	for _, v := range y {
		pooled = append(pooled, obs{v, 1})
	}
	sort.Slice(pooled, func(i, j int) bool { return pooled[i].v < pooled[j].v })

	// U statistic per Anderson: sum over both samples of squared
	// (rank − within-sample index) differences.
	var u float64
	ri, rj := 0, 0 // counts consumed from each sample
	for k := 0; k < len(pooled); k++ {
		rank := float64(k + 1)
		if pooled[k].from == 0 {
			ri++
			d := rank - float64(ri)
			u += float64(n) * d * d
		} else {
			rj++
			d := rank - float64(rj)
			u += float64(m) * d * d
		}
	}
	nf, mf := float64(n), float64(m)
	nm := nf * mf
	t := u/(nm*(nf+mf)) - (4*nm-1)/(6*(nf+mf))

	return CvMResult{T: t, PValue: cvmPValue(t), N1: n, N2: m}, nil
}

// cvmPValue approximates P[T >= t] for the limiting distribution of
// the Cramér–von Mises statistic with the leading tail term
//
//	P[T >= t] ≈ A · t^{-1/2} · exp(-π²·t/2),  A = 0.337
//
// The exponent π²/2 is the reciprocal of the largest eigenvalue in
// the ω² Karhunen–Loève expansion; A is calibrated to Anderson &
// Darling's tabulated critical values and reproduces them closely
// across the usable range (p(0.347)≈0.103, p(0.461)≈0.051,
// p(0.743)≈0.010, p(1.168)≈0.001). The form is strictly decreasing
// in t, clamped to [0, 1].
func cvmPValue(t float64) float64 {
	if t <= 0 {
		return 1
	}
	const a = 0.337
	p := a * math.Exp(-math.Pi*math.Pi*t/2) / math.Sqrt(t)
	if p > 1 {
		return 1
	}
	return p
}
