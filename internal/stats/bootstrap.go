package stats

import (
	"math/rand"
	"sort"
)

// BootstrapMedianCI estimates a confidence interval for the sample
// median by the percentile bootstrap: resample with replacement,
// recompute the median, and take the (alpha/2, 1-alpha/2) quantiles
// of the resampled medians. Deterministic in the seed.
//
// The paper reports bare medians; the interval quantifies how much
// weight to give small Table 5 differences (e.g. 10 s vs 12 s CPE
// durations) when judging reproduction quality.
func BootstrapMedianCI(sample []float64, rounds int, alpha float64, seed int64) (lo, hi float64, err error) {
	if len(sample) == 0 {
		return 0, 0, ErrNoData
	}
	if rounds <= 0 {
		rounds = 1000
	}
	if alpha <= 0 || alpha >= 1 {
		alpha = 0.05
	}
	rng := rand.New(rand.NewSource(seed))
	medians := make([]float64, rounds)
	resample := make([]float64, len(sample))
	for r := 0; r < rounds; r++ {
		for i := range resample {
			resample[i] = sample[rng.Intn(len(sample))]
		}
		sort.Float64s(resample)
		medians[r] = quantileSorted(resample, 0.5)
	}
	sort.Float64s(medians)
	lo = quantileSorted(medians, alpha/2)
	hi = quantileSorted(medians, 1-alpha/2)
	return lo, hi, nil
}
