package stats_test

import (
	"fmt"

	"netfail/internal/stats"
)

// ExampleKSTest checks whether two failure-duration samples could
// come from the same distribution, the §4.2 consistency question.
func ExampleKSTest() {
	syslogDurations := []float64{1, 2, 2, 5, 10, 12, 48, 52, 60, 300}
	isisDurations := []float64{2, 3, 4, 6, 11, 12, 42, 55, 70, 290}
	r, err := stats.KSTest(syslogDurations, isisDurations)
	if err != nil {
		panic(err)
	}
	fmt.Printf("D = %.2f, consistent at 5%%: %v\n", r.D, r.Consistent(0.05))
	// Output:
	// D = 0.20, consistent at 5%: true
}

// ExampleSummarize reports the order statistics every Table 5 cell
// carries.
func ExampleSummarize() {
	s, err := stats.Summarize([]float64{10, 12, 42, 52, 1527})
	if err != nil {
		panic(err)
	}
	fmt.Printf("median %.0f, mean %.0f\n", s.Median, s.Mean)
	// Output:
	// median 42, mean 329
}
