package stats

import (
	"math/rand"
	"testing"
)

func TestCvMSameDistribution(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	rejections := 0
	const trials = 30
	for i := 0; i < trials; i++ {
		a := make([]float64, 300)
		b := make([]float64, 400)
		for j := range a {
			a[j] = rng.ExpFloat64()
		}
		for j := range b {
			b[j] = rng.ExpFloat64()
		}
		r, err := CvMTest(a, b)
		if err != nil {
			t.Fatal(err)
		}
		if !r.Consistent(0.05) {
			rejections++
		}
	}
	// At alpha 0.05 expect ~1.5 rejections in 30 trials; allow 5.
	if rejections > 5 {
		t.Errorf("rejections = %d/%d under H0", rejections, trials)
	}
}

func TestCvMShiftedDistribution(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	a := make([]float64, 500)
	b := make([]float64, 500)
	for j := range a {
		a[j] = rng.NormFloat64()
		b[j] = rng.NormFloat64() + 0.5
	}
	r, err := CvMTest(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if r.Consistent(0.01) {
		t.Errorf("shifted samples accepted: T=%v p=%v", r.T, r.PValue)
	}
}

func TestCvMIdenticalSamples(t *testing.T) {
	s := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	r, err := CvMTest(s, s)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Consistent(0.05) {
		t.Errorf("identical samples rejected: T=%v p=%v", r.T, r.PValue)
	}
}

func TestCvMKnownCriticalValue(t *testing.T) {
	// The limiting distribution's 0.05 critical value is ~0.461 and
	// the 0.01 value ~0.743 (Anderson & Darling 1952).
	if p := cvmPValue(0.461); p < 0.035 || p > 0.065 {
		t.Errorf("p(0.461) = %v, want ~0.05", p)
	}
	if p := cvmPValue(0.743); p < 0.005 || p > 0.02 {
		t.Errorf("p(0.743) = %v, want ~0.01", p)
	}
	if p := cvmPValue(0.05); p < 0.5 {
		t.Errorf("p(0.05) = %v, want large", p)
	}
}

func TestCvMMonotonePValue(t *testing.T) {
	prev := 1.1
	for x := 0.05; x < 2.0; x += 0.05 {
		p := cvmPValue(x)
		if p > prev+1e-9 {
			t.Fatalf("p-value not monotone at %v: %v > %v", x, p, prev)
		}
		prev = p
	}
}

func TestCvMErrors(t *testing.T) {
	if _, err := CvMTest(nil, []float64{1}); err != ErrNoData {
		t.Errorf("err = %v", err)
	}
}

func TestCvMAgreesWithKSOnGrossDifference(t *testing.T) {
	a := make([]float64, 200)
	b := make([]float64, 200)
	for i := range a {
		a[i] = float64(i)
		b[i] = float64(i + 1000)
	}
	cvm, err := CvMTest(a, b)
	if err != nil {
		t.Fatal(err)
	}
	ks, err := KSTest(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if cvm.Consistent(0.05) || ks.Consistent(0.05) {
		t.Errorf("disjoint samples accepted: cvm p=%v ks p=%v", cvm.PValue, ks.PValue)
	}
}
