package stats

import (
	"math/rand"
	"testing"
)

func TestBootstrapMedianCICoversTrueMedian(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	covered := 0
	const trials = 40
	for i := 0; i < trials; i++ {
		// Exponential with true median ln(2)*100 ≈ 69.3.
		sample := make([]float64, 400)
		for j := range sample {
			sample[j] = rng.ExpFloat64() * 100
		}
		lo, hi, err := BootstrapMedianCI(sample, 500, 0.05, int64(i))
		if err != nil {
			t.Fatal(err)
		}
		if lo > hi {
			t.Fatalf("lo %v > hi %v", lo, hi)
		}
		if lo <= 69.3 && 69.3 <= hi {
			covered++
		}
	}
	// A 95% interval should cover the truth nearly always over 40
	// trials; demand at least 34.
	if covered < 34 {
		t.Errorf("coverage = %d/%d", covered, trials)
	}
}

func TestBootstrapMedianCIDeterministic(t *testing.T) {
	sample := []float64{5, 1, 9, 3, 7, 2, 8}
	lo1, hi1, err := BootstrapMedianCI(sample, 300, 0.05, 7)
	if err != nil {
		t.Fatal(err)
	}
	lo2, hi2, err := BootstrapMedianCI(sample, 300, 0.05, 7)
	if err != nil {
		t.Fatal(err)
	}
	if lo1 != lo2 || hi1 != hi2 {
		t.Error("nondeterministic")
	}
}

func TestBootstrapMedianCIBracketsSampleMedian(t *testing.T) {
	sample := []float64{10, 20, 30, 40, 50, 60, 70}
	lo, hi, err := BootstrapMedianCI(sample, 1000, 0.05, 1)
	if err != nil {
		t.Fatal(err)
	}
	if lo > 40 || hi < 40 {
		t.Errorf("CI [%v, %v] excludes the sample median 40", lo, hi)
	}
	if lo < 10 || hi > 70 {
		t.Errorf("CI [%v, %v] outside sample range", lo, hi)
	}
}

func TestBootstrapMedianCINarrowsWithN(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	width := func(n int) float64 {
		sample := make([]float64, n)
		for i := range sample {
			sample[i] = rng.NormFloat64()
		}
		lo, hi, err := BootstrapMedianCI(sample, 500, 0.05, 1)
		if err != nil {
			t.Fatal(err)
		}
		return hi - lo
	}
	if w1, w2 := width(50), width(5000); w2 >= w1 {
		t.Errorf("CI did not narrow: n=50 width %v, n=5000 width %v", w1, w2)
	}
}

func TestBootstrapMedianCIErrors(t *testing.T) {
	if _, _, err := BootstrapMedianCI(nil, 100, 0.05, 1); err != ErrNoData {
		t.Errorf("err = %v", err)
	}
	// Degenerate parameters fall back to defaults.
	lo, hi, err := BootstrapMedianCI([]float64{1, 2, 3}, 0, 2, 1)
	if err != nil || lo > hi {
		t.Errorf("defaults broken: %v %v %v", lo, hi, err)
	}
}
