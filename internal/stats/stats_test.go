package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestSummarize(t *testing.T) {
	s, err := Summarize([]float64{1, 2, 3, 4, 5})
	if err != nil {
		t.Fatal(err)
	}
	if s.Median != 3 || s.Mean != 3 || s.N != 5 {
		t.Errorf("got %+v", s)
	}
	if !almostEqual(s.P95, 4.8, 1e-9) {
		t.Errorf("P95 = %v, want 4.8", s.P95)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	if _, err := Summarize(nil); err != ErrNoData {
		t.Errorf("err = %v, want ErrNoData", err)
	}
}

func TestQuantileEdges(t *testing.T) {
	sample := []float64{10, 20, 30}
	for _, c := range []struct{ q, want float64 }{
		{0, 10}, {1, 30}, {0.5, 20}, {-1, 10}, {2, 30},
	} {
		got, err := Quantile(sample, c.q)
		if err != nil || got != c.want {
			t.Errorf("Quantile(%v) = %v, %v; want %v", c.q, got, err, c.want)
		}
	}
}

func TestQuantileDoesNotMutateInput(t *testing.T) {
	sample := []float64{3, 1, 2}
	if _, err := Quantile(sample, 0.5); err != nil {
		t.Fatal(err)
	}
	if sample[0] != 3 || sample[1] != 1 || sample[2] != 2 {
		t.Errorf("input mutated: %v", sample)
	}
}

func TestQuantileMonotoneQuick(t *testing.T) {
	f := func(raw []float64, q1, q2 float64) bool {
		var sample []float64
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				sample = append(sample, v)
			}
		}
		if len(sample) == 0 {
			return true
		}
		a, b := math.Abs(math.Mod(q1, 1)), math.Abs(math.Mod(q2, 1))
		if a > b {
			a, b = b, a
		}
		qa, _ := Quantile(sample, a)
		qb, _ := Quantile(sample, b)
		return qa <= qb
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestECDF(t *testing.T) {
	e := NewECDF([]float64{1, 2, 2, 4})
	cases := []struct{ x, want float64 }{
		{0, 0}, {1, 0.25}, {2, 0.75}, {3, 0.75}, {4, 1}, {99, 1},
	}
	for _, c := range cases {
		if got := e.At(c.x); got != c.want {
			t.Errorf("At(%v) = %v, want %v", c.x, got, c.want)
		}
	}
}

func TestECDFPoints(t *testing.T) {
	e := NewECDF([]float64{1, 2, 2, 4})
	xs, ys := e.Points()
	wantX := []float64{1, 2, 4}
	wantY := []float64{0.25, 0.75, 1}
	if len(xs) != len(wantX) {
		t.Fatalf("got %d points, want %d", len(xs), len(wantX))
	}
	for i := range xs {
		if xs[i] != wantX[i] || ys[i] != wantY[i] {
			t.Errorf("point %d = (%v,%v), want (%v,%v)", i, xs[i], ys[i], wantX[i], wantY[i])
		}
	}
}

func TestECDFMatchesBruteForceQuick(t *testing.T) {
	f := func(raw []float64, x float64) bool {
		var sample []float64
		for _, v := range raw {
			if !math.IsNaN(v) {
				sample = append(sample, v)
			}
		}
		if math.IsNaN(x) {
			return true
		}
		e := NewECDF(sample)
		count := 0
		for _, v := range sample {
			if v <= x {
				count++
			}
		}
		want := 0.0
		if len(sample) > 0 {
			want = float64(count) / float64(len(sample))
		}
		return e.At(x) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestKSIdenticalSamples(t *testing.T) {
	sample := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	r, err := KSTest(sample, sample)
	if err != nil {
		t.Fatal(err)
	}
	if r.D != 0 {
		t.Errorf("D = %v, want 0", r.D)
	}
	if !r.Consistent(0.05) {
		t.Error("identical samples judged inconsistent")
	}
}

func TestKSDisjointSamples(t *testing.T) {
	a := make([]float64, 100)
	b := make([]float64, 100)
	for i := range a {
		a[i] = float64(i)
		b[i] = float64(i + 1000)
	}
	r, err := KSTest(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if r.D != 1 {
		t.Errorf("D = %v, want 1", r.D)
	}
	if r.Consistent(0.05) {
		t.Error("disjoint samples judged consistent")
	}
}

func TestKSSameDistribution(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := make([]float64, 500)
	b := make([]float64, 600)
	for i := range a {
		a[i] = rng.NormFloat64()
	}
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	r, err := KSTest(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Consistent(0.01) {
		t.Errorf("same-distribution samples rejected: D=%v p=%v", r.D, r.PValue)
	}
}

func TestKSShiftedDistribution(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := make([]float64, 800)
	b := make([]float64, 800)
	for i := range a {
		a[i] = rng.NormFloat64()
		b[i] = rng.NormFloat64() + 1.0
	}
	r, err := KSTest(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if r.Consistent(0.05) {
		t.Errorf("shifted samples accepted: D=%v p=%v", r.D, r.PValue)
	}
}

func TestKSEmpty(t *testing.T) {
	if _, err := KSTest(nil, []float64{1}); err != ErrNoData {
		t.Errorf("err = %v, want ErrNoData", err)
	}
}

func TestKSStatisticMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		a := make([]float64, 5+rng.Intn(50))
		b := make([]float64, 5+rng.Intn(50))
		for i := range a {
			a[i] = math.Round(rng.Float64()*20) / 2 // ties on purpose
		}
		for i := range b {
			b[i] = math.Round(rng.Float64()*20) / 2
		}
		r, err := KSTest(a, b)
		if err != nil {
			t.Fatal(err)
		}
		// Brute force: max over all sample points of |Fa - Fb|.
		ea, eb := NewECDF(a), NewECDF(b)
		all := append(append([]float64(nil), a...), b...)
		sort.Float64s(all)
		var want float64
		for _, x := range all {
			if d := math.Abs(ea.At(x) - eb.At(x)); d > want {
				want = d
			}
		}
		if !almostEqual(r.D, want, 1e-12) {
			t.Errorf("trial %d: D = %v, brute force %v", trial, r.D, want)
		}
	}
}

func TestKSPValueDecreasesWithD(t *testing.T) {
	// For fixed sample sizes, larger D must give smaller p.
	prev := 1.1
	for d := 0.05; d <= 0.5; d += 0.05 {
		lambda := (math.Sqrt(50) + 0.12 + 0.11/math.Sqrt(50)) * d
		p := ksQ(lambda)
		if p > prev {
			t.Errorf("p-value not monotone at D=%v: %v > %v", d, p, prev)
		}
		prev = p
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram([]float64{0.5, 1.5, 1.6, 9.9, -1, 11}, 10, 0, 10)
	if h.N != 4 {
		t.Errorf("N = %d, want 4 (out-of-range dropped)", h.N)
	}
	if h.Counts[0] != 1 || h.Counts[1] != 2 || h.Counts[9] != 1 {
		t.Errorf("counts = %v", h.Counts)
	}
}

func TestHistogramUpperEdgeInLastBin(t *testing.T) {
	h := NewHistogram([]float64{10}, 10, 0, 10)
	if h.Counts[9] != 1 {
		t.Errorf("upper edge not in last bin: %v", h.Counts)
	}
}

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("Mean(nil) != 0")
	}
	if Mean([]float64{2, 4}) != 3 {
		t.Error("Mean([2 4]) != 3")
	}
}
