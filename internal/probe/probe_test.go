package probe

import (
	"testing"
	"time"

	"netfail/internal/topo"
	"netfail/internal/trace"
)

// probeNet: vantage -- core-a -- core-b -- cpe-1 (a chain, so cuts
// are easy to reason about).
func probeNet(t *testing.T) (*topo.Network, *topo.Graph, map[string]topo.LinkID) {
	t.Helper()
	n := topo.NewNetwork()
	names := []string{"vantage", "core-a", "core-b", "cpe-1"}
	for i, name := range names {
		class := topo.Core
		if name == "cpe-1" {
			class = topo.CPE
		}
		if err := n.AddRouter(&topo.Router{Name: name, Class: class, SystemID: topo.SystemIDFromIndex(i + 1)}); err != nil {
			t.Fatal(err)
		}
	}
	links := map[string]topo.LinkID{}
	add := func(tag, a, b string, subnet uint32) {
		l, err := n.AddLink(topo.Endpoint{Host: a, Port: "p" + tag}, topo.Endpoint{Host: b, Port: "q" + tag}, subnet, 10)
		if err != nil {
			t.Fatal(err)
		}
		links[tag] = l.ID
	}
	add("va", "vantage", "core-a", 0)
	add("ab", "core-a", "core-b", 2)
	add("b1", "core-b", "cpe-1", 4)
	return n, topo.NewGraph(n), links
}

func at(min int) time.Time {
	return time.Date(2011, 5, 1, 0, 0, 0, 0, time.UTC).Add(time.Duration(min) * time.Minute)
}

func TestProbeDetectsLongOutage(t *testing.T) {
	n, g, links := probeNet(t)
	// cpe-1's uplink down for an hour.
	failures := []trace.Failure{{Link: links["b1"], Start: at(60), End: at(120)}}
	p := DefaultParams("vantage")
	p.ReplyLoss = 0
	res := Run(g, n, failures, p, at(0), at(240))
	var hit *Outage
	for i := range res.Outages {
		if res.Outages[i].Router == "cpe-1" {
			hit = &res.Outages[i]
		}
	}
	if hit == nil {
		t.Fatalf("outage not detected: %+v", res.Outages)
	}
	// Detected start is quantized to the probing grid.
	if hit.Interval.Start.Before(at(60)) || hit.Interval.Start.After(at(65)) {
		t.Errorf("detected start = %v", hit.Interval.Start)
	}
	if hit.Interval.End.Before(at(120)) || hit.Interval.End.After(at(125)) {
		t.Errorf("detected end = %v", hit.Interval.End)
	}
	// Upstream routers were never cut.
	for _, o := range res.Outages {
		if o.Router != "cpe-1" {
			t.Errorf("false outage on %s", o.Router)
		}
	}
}

func TestProbeMissesShortFailure(t *testing.T) {
	n, g, links := probeNet(t)
	// A 90-second blip between probes.
	failures := []trace.Failure{{
		Link:  links["b1"],
		Start: at(60).Add(30 * time.Second),
		End:   at(60).Add(2 * time.Minute),
	}}
	p := DefaultParams("vantage")
	p.ReplyLoss = 0
	res := Run(g, n, failures, p, at(0), at(240))
	if len(res.Outages) != 0 {
		t.Errorf("short blip detected: %+v (probing cannot see it)", res.Outages)
	}
}

func TestProbeMidChainCutAffectsDownstream(t *testing.T) {
	n, g, links := probeNet(t)
	failures := []trace.Failure{{Link: links["ab"], Start: at(30), End: at(90)}}
	p := DefaultParams("vantage")
	p.ReplyLoss = 0
	res := Run(g, n, failures, p, at(0), at(240))
	affected := map[string]bool{}
	for _, o := range res.Outages {
		affected[o.Router] = true
	}
	if !affected["core-b"] || !affected["cpe-1"] {
		t.Errorf("downstream routers not affected: %v", affected)
	}
	if affected["core-a"] {
		t.Error("core-a should stay reachable")
	}
}

func TestProbeLossThresholdSuppressesBlips(t *testing.T) {
	n, g, _ := probeNet(t)
	// No failures, heavy background loss: with threshold 2, isolated
	// single losses must not produce outages... but consecutive
	// random losses may. Use threshold high enough to suppress all.
	p := DefaultParams("vantage")
	p.ReplyLoss = 0.2
	p.LossThreshold = 6
	res := Run(g, n, nil, p, at(0), at(6000))
	if len(res.Outages) != 0 {
		t.Errorf("background loss produced %d outages at threshold 6", len(res.Outages))
	}
	if res.ProbesSent == 0 {
		t.Error("no probes sent")
	}
}

func TestAssessCoverage(t *testing.T) {
	n, g, links := probeNet(t)
	failures := []trace.Failure{
		{Link: links["b1"], Start: at(60), End: at(120)},                                      // long: detectable
		{Link: links["b1"], Start: at(200), End: at(200).Add(30 * time.Second)},               // short: invisible
		{Link: links["ab"], Start: at(400), End: at(460)},                                     // long on another link
		{Link: links["va"], Start: at(600), End: at(600).Add(90 * time.Second)},               // short
		{Link: links["b1"], Start: at(800), End: at(800).Add(4*time.Minute + 59*time.Second)}, // just under interval
	}
	p := DefaultParams("vantage")
	p.ReplyLoss = 0
	res := Run(g, n, failures, p, at(0), at(1000))
	cov := Assess(res, failures, p.Interval)
	if cov.ReferenceFailures != 5 {
		t.Fatalf("reference = %d", cov.ReferenceFailures)
	}
	if cov.Detected < 2 {
		t.Errorf("detected = %d, want at least the two long failures", cov.Detected)
	}
	if cov.Detected >= 5 {
		t.Errorf("detected = %d — probing should be sparse", cov.Detected)
	}
	if cov.DetectedLong < 2 || cov.LongFailures < 2 {
		t.Errorf("long coverage: %d/%d", cov.DetectedLong, cov.LongFailures)
	}
	if f := cov.Fraction(); f <= 0 || f >= 1 {
		t.Errorf("fraction = %v", f)
	}
}

func TestProbeDeterministic(t *testing.T) {
	n, g, links := probeNet(t)
	failures := []trace.Failure{{Link: links["b1"], Start: at(60), End: at(120)}}
	p := DefaultParams("vantage")
	a := Run(g, n, failures, p, at(0), at(500))
	b := Run(g, n, failures, p, at(0), at(500))
	if len(a.Outages) != len(b.Outages) || a.ProbesSent != b.ProbesSent {
		t.Error("nondeterministic")
	}
}
