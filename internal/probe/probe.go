// Package probe models the active-measurement methodology the
// authors' earlier study used as a validation source (§1): a vantage
// point pings every router at a fixed interval, and a run of
// consecutive losses is declared an outage. The paper's motivation
// for the IS-IS comparison is precisely that this source provides
// "only sparse coverage of the failures" — probes cannot see outages
// shorter than the probing interval, cannot attribute an outage to a
// link, and only notice failures that actually cut the probe path.
//
// The prober replays a failure trace over the topology graph and
// produces per-router outage intervals, plus the coverage accounting
// that quantifies the sparseness.
package probe

import (
	"sort"
	"time"

	"netfail/internal/topo"
	"netfail/internal/trace"
)

// Params configures the prober.
type Params struct {
	// Vantage is the hostname the probes originate from.
	Vantage string
	// Interval is the probing period (operationally: minutes).
	Interval time.Duration
	// LossThreshold is the number of consecutive missing replies
	// before an outage is declared.
	LossThreshold int
	// ReplyLoss is the probability a probe is lost even though the
	// path is up (background packet loss).
	ReplyLoss float64
	// Seed drives the background loss.
	Seed int64
}

// DefaultParams probes every five minutes and declares an outage
// after two consecutive losses, a common operational configuration.
func DefaultParams(vantage string) Params {
	return Params{
		Vantage:       vantage,
		Interval:      5 * time.Minute,
		LossThreshold: 2,
		ReplyLoss:     0.001,
		Seed:          1,
	}
}

// Outage is one probing-detected outage of a target router.
type Outage struct {
	Router   string
	Interval trace.Interval
}

// Result is the prober's output.
type Result struct {
	// Outages are the detected per-router outages, ordered by start.
	Outages []Outage
	// ProbesSent counts the probes issued.
	ProbesSent int
}

// reachabilityTimeline answers "was router R reachable from the
// vantage at time t" by sweeping failure boundaries once.
type reachabilityTimeline struct {
	// cuts[router] holds the intervals during which the router was
	// unreachable.
	cuts map[string][]trace.Interval
}

// buildTimeline sweeps the failure trace over the graph.
func buildTimeline(g *topo.Graph, routers []string, vantage string, failures []trace.Failure, end time.Time) *reachabilityTimeline {
	tl := &reachabilityTimeline{cuts: make(map[string][]trace.Interval)}
	if len(failures) == 0 {
		return tl
	}
	type boundary struct {
		t    time.Time
		link topo.LinkID
		down bool
	}
	bounds := make([]boundary, 0, 2*len(failures))
	for _, f := range failures {
		bounds = append(bounds, boundary{f.Start, f.Link, true}, boundary{f.End, f.Link, false})
	}
	sort.Slice(bounds, func(i, j int) bool {
		if !bounds[i].t.Equal(bounds[j].t) {
			return bounds[i].t.Before(bounds[j].t)
		}
		return !bounds[i].down && bounds[j].down
	})

	downCount := make(map[topo.LinkID]int)
	downSet := make(map[topo.LinkID]bool)
	cutSince := make(map[string]time.Time)
	for i := 0; i < len(bounds); {
		t := bounds[i].t
		for i < len(bounds) && bounds[i].t.Equal(t) {
			b := bounds[i]
			if b.down {
				downCount[b.link]++
			} else {
				downCount[b.link]--
			}
			if downCount[b.link] > 0 {
				downSet[b.link] = true
			} else {
				delete(downSet, b.link)
			}
			i++
		}
		for _, r := range routers {
			reachable := g.Reachable(vantage, r, downSet)
			_, cut := cutSince[r]
			switch {
			case !reachable && !cut:
				cutSince[r] = t
			case reachable && cut:
				tl.cuts[r] = append(tl.cuts[r], trace.Interval{Start: cutSince[r], End: t})
				delete(cutSince, r)
			}
		}
	}
	for r, since := range cutSince {
		tl.cuts[r] = append(tl.cuts[r], trace.Interval{Start: since, End: end})
	}
	return tl
}

// unreachableAt reports whether the router was cut off at t.
func (tl *reachabilityTimeline) unreachableAt(router string, t time.Time) bool {
	cuts := tl.cuts[router]
	i := sort.Search(len(cuts), func(i int) bool { return cuts[i].End.After(t) })
	return i < len(cuts) && cuts[i].Contains(t)
}

// Run replays the failure trace and probes every router (except the
// vantage) over [start, end).
func Run(g *topo.Graph, net *topo.Network, failures []trace.Failure, p Params, start, end time.Time) *Result {
	res := &Result{}
	targets := make([]string, 0, len(net.RouterNames))
	for _, name := range net.RouterNames {
		if name != p.Vantage {
			targets = append(targets, name)
		}
	}
	tl := buildTimeline(g, targets, p.Vantage, failures, end)
	rng := newLCG(p.Seed)

	for _, target := range targets {
		misses := 0
		var downSince time.Time
		declared := false
		for t := start; t.Before(end); t = t.Add(p.Interval) {
			res.ProbesSent++
			lost := tl.unreachableAt(target, t) || rng.float64() < p.ReplyLoss
			if lost {
				if misses == 0 {
					downSince = t
				}
				misses++
				if misses == p.LossThreshold {
					declared = true
				}
				continue
			}
			if declared {
				res.Outages = append(res.Outages, Outage{
					Router:   target,
					Interval: trace.Interval{Start: downSince, End: t},
				})
			}
			misses = 0
			declared = false
		}
		if declared {
			res.Outages = append(res.Outages, Outage{
				Router:   target,
				Interval: trace.Interval{Start: downSince, End: end},
			})
		}
	}
	sort.Slice(res.Outages, func(i, j int) bool {
		if !res.Outages[i].Interval.Start.Equal(res.Outages[j].Interval.Start) {
			return res.Outages[i].Interval.Start.Before(res.Outages[j].Interval.Start)
		}
		return res.Outages[i].Router < res.Outages[j].Router
	})
	return res
}

// Coverage quantifies the sparseness the paper complains about: the
// fraction of reference failures (typically the IS-IS trace) during
// which probing detected any outage at all.
type Coverage struct {
	ReferenceFailures int
	Detected          int
	// DetectedLong counts detections among failures at least one
	// probing interval long — the only ones probing can plausibly
	// see.
	LongFailures int
	DetectedLong int
}

// Fraction returns detected over reference.
func (c Coverage) Fraction() float64 {
	if c.ReferenceFailures == 0 {
		return 0
	}
	return float64(c.Detected) / float64(c.ReferenceFailures)
}

// Assess matches probing outages against a reference failure list: a
// failure counts as detected if any outage overlaps it in time.
func Assess(res *Result, reference []trace.Failure, interval time.Duration) Coverage {
	byStart := make([]trace.Interval, len(res.Outages))
	for i, o := range res.Outages {
		byStart[i] = o.Interval
	}
	var c Coverage
	for _, f := range reference {
		c.ReferenceFailures++
		long := f.Duration() >= interval
		if long {
			c.LongFailures++
		}
		hit := false
		for _, iv := range byStart {
			if iv.Start.After(f.End) {
				break
			}
			if f.Overlaps(iv.Start, iv.End) {
				hit = true
				break
			}
		}
		if hit {
			c.Detected++
			if long {
				c.DetectedLong++
			}
		}
	}
	return c
}

// lcg is a tiny deterministic generator so the package stays
// independent of the simulator's RNG plumbing.
type lcg struct{ state uint64 }

func newLCG(seed int64) *lcg {
	return &lcg{state: uint64(seed)*6364136223846793005 + 1442695040888963407}
}

func (l *lcg) float64() float64 {
	l.state = l.state*6364136223846793005 + 1442695040888963407
	return float64(l.state>>11) / float64(1<<53)
}
