package obs

import "netfail/internal/salvage"

// AddSalvage folds a lenient reader's salvage accounting into the
// registry under the given prefix, so torn captures and damaged
// checkpoints are visible on the debug endpoint, not just in exit
// summaries:
//
//	<prefix>.kept             records parsed
//	<prefix>.skipped          lines/frames discarded
//	<prefix>.skipped.<reason> discards by reason
//
// Both the prefix and the reasons are free text (file names, parser
// messages); anything outside [a-zA-Z0-9.-_] becomes _. Counters
// accumulate across calls, matching how an ingest path reads many
// files through the same registry. A nil registry or nil report is a
// no-op.
func AddSalvage(r *Registry, prefix string, rep *salvage.Report) {
	if r == nil || rep == nil {
		return
	}
	prefix = metricName(prefix)
	r.Counter(prefix + ".kept").Add(int64(rep.Kept))
	if rep.Skipped == 0 {
		return
	}
	r.Counter(prefix + ".skipped").Add(int64(rep.Skipped))
	for reason, n := range rep.Reasons {
		r.Counter(prefix + ".skipped." + metricName(reason)).Add(int64(n))
	}
}

// metricName makes a free-text skip reason safe as a metric suffix.
func metricName(reason string) string {
	out := []byte(reason)
	for i, c := range out {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '.', c == '-', c == '_':
		default:
			out[i] = '_'
		}
	}
	return string(out)
}
