package obs

import "fmt"

// An EventKind classifies a progress event.
type EventKind int

const (
	// StageStarted marks a pipeline stage beginning.
	StageStarted EventKind = iota
	// StageFinished marks a pipeline stage completing.
	StageFinished
	// ShardDone reports fan-out progress inside a stage: Shard of
	// Shards tasks have completed.
	ShardDone
)

// String names the kind.
func (k EventKind) String() string {
	switch k {
	case StageStarted:
		return "started"
	case StageFinished:
		return "finished"
	case ShardDone:
		return "shard"
	default:
		return fmt.Sprintf("EventKind(%d)", int(k))
	}
}

// An Event is one progress notification from the pipeline.
type Event struct {
	// Kind says what happened.
	Kind EventKind
	// Stage is the pipeline stage name ("simulate", "reconstruct",
	// "report/table4", ...).
	Stage string
	// Shard and Shards carry fan-out progress for ShardDone events:
	// Shard tasks of Shards have completed.
	Shard, Shards int
}

// String renders the event as a one-line human-readable message.
func (e Event) String() string {
	if e.Kind == ShardDone {
		return fmt.Sprintf("%s %d/%d", e.Stage, e.Shard, e.Shards)
	}
	return fmt.Sprintf("%s %s", e.Stage, e.Kind)
}

// A ProgressFunc consumes progress events. Parallel stages invoke it
// from multiple goroutines concurrently; the consumer synchronizes.
type ProgressFunc func(Event)
