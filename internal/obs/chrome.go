package obs

import (
	"encoding/json"
	"io"
	"time"
)

// chromeEvent is one Chrome trace_event record ("X" = complete
// event), the format chrome://tracing and Perfetto load.
type chromeEvent struct {
	Name string           `json:"name"`
	Ph   string           `json:"ph"`
	Ts   int64            `json:"ts"`  // microseconds since the first span
	Dur  int64            `json:"dur"` // microseconds
	Pid  int              `json:"pid"`
	Tid  int              `json:"tid"`
	Args map[string]int64 `json:"args,omitempty"`
}

// WriteChromeTrace exports the span forest as Chrome trace_event JSON
// (`netfail-analyze -trace-json`): one complete ("X") event per span,
// timestamps relative to the earliest span, span counters in args.
// Each span gets its own track (tid) in depth-first order, so
// parallel shards render side by side instead of overlapping.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	roots := t.Snapshot()
	var epoch time.Time
	for _, r := range roots {
		if epoch.IsZero() || r.Start.Before(epoch) {
			epoch = r.Start
		}
	}
	var events []chromeEvent
	tid := 0
	var walk func(info *SpanInfo)
	walk = func(info *SpanInfo) {
		tid++
		ev := chromeEvent{
			Name: info.Name,
			Ph:   "X",
			Ts:   info.Start.Sub(epoch).Microseconds(),
			Dur:  info.Dur.Microseconds(),
			Pid:  1,
			Tid:  tid,
		}
		if len(info.Counters) > 0 {
			ev.Args = make(map[string]int64, len(info.Counters))
			for _, c := range info.Counters {
				ev.Args[c.Name] = c.Value
			}
		}
		events = append(events, ev)
		for _, c := range info.Children {
			walk(c)
		}
	}
	for _, r := range roots {
		walk(r)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(struct {
		TraceEvents []chromeEvent `json:"traceEvents"`
	}{TraceEvents: events})
}
