package obs

import (
	"bytes"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
)

// A Registry holds named counters and gauges describing pipeline
// volume: messages parsed and dropped, LSPs processed, transitions
// matched, pool tasks queued and ran. All methods are safe for
// concurrent use, and a nil *Registry (metrics disabled) is a valid
// no-op whose lookups return nil no-op instruments.
//
// Registry implements expvar.Var (String returns a JSON object), so
// one call to Publish — or any expvar.Publish — exposes it at
// /debug/vars next to the runtime's own variables.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter // guarded by mu
	gauges   map[string]*Gauge   // guarded by mu
}

// NewRegistry returns an empty metrics registry.
func NewRegistry() *Registry { return &Registry{} }

// A Counter is a monotonically increasing int64. A nil *Counter
// drops updates.
type Counter struct{ v atomic.Int64 }

// Add folds n into the counter.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value reads the counter; zero for nil.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// A Gauge is a settable int64. A nil *Gauge drops updates.
type Gauge struct{ v atomic.Int64 }

// Set stores n.
func (g *Gauge) Set(n int64) {
	if g == nil {
		return
	}
	g.v.Store(n)
}

// Add folds n into the gauge.
func (g *Gauge) Add(n int64) {
	if g == nil {
		return
	}
	g.v.Add(n)
}

// Value reads the gauge; zero for nil.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Counter returns the named counter, creating it at zero on first
// use. Callers in hot loops should look the counter up once outside
// the loop. A nil registry returns a nil no-op counter.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		if r.counters == nil {
			r.counters = make(map[string]*Counter)
		}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it at zero on first use. A
// nil registry returns a nil no-op gauge.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		if r.gauges == nil {
			r.gauges = make(map[string]*Gauge)
		}
		r.gauges[name] = g
	}
	return g
}

// A MetricValue is one named metric in a snapshot.
type MetricValue struct {
	Name  string
	Value int64
}

// Snapshot returns every counter and gauge sorted by name.
func (r *Registry) Snapshot() []MetricValue {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]MetricValue, 0, len(r.counters)+len(r.gauges))
	for name, c := range r.counters {
		out = append(out, MetricValue{Name: name, Value: c.Value()})
	}
	for name, g := range r.gauges {
		out = append(out, MetricValue{Name: name, Value: g.Value()})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// String renders the snapshot as a JSON object, making Registry an
// expvar.Var.
func (r *Registry) String() string {
	var buf bytes.Buffer
	buf.WriteByte('{')
	for i, m := range r.Snapshot() {
		if i > 0 {
			buf.WriteString(", ")
		}
		fmt.Fprintf(&buf, "%q: %d", m.Name, m.Value)
	}
	buf.WriteByte('}')
	return buf.String()
}

// WriteText renders the snapshot as "metric <name> <value>" lines,
// the format netfail-analyze -metrics prints to stderr.
func (r *Registry) WriteText(w io.Writer) error {
	for _, m := range r.Snapshot() {
		if _, err := fmt.Fprintf(w, "metric %s %d\n", m.Name, m.Value); err != nil {
			return err
		}
	}
	return nil
}
