package obs

import (
	"expvar"
	"net/http"
	"net/http/pprof"
)

// Publish registers r with the process-global expvar namespace under
// name, making it visible at /debug/vars. Publishing the same name
// twice is a no-op (expvar panics on duplicates; long-running
// binaries may re-enter their setup path).
func Publish(name string, r *Registry) {
	if r == nil || expvar.Get(name) != nil {
		return
	}
	expvar.Publish(name, r)
}

// DebugMux builds the debug endpoint the long-running binaries serve
// on -debug-addr: the expvar snapshot (including any Published
// registry) at /debug/vars, the registry alone at /debug/netfail,
// and the net/http/pprof profiles under /debug/pprof/.
func DebugMux(r *Registry) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/netfail", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		if _, err := w.Write([]byte(r.String())); err != nil {
			return // client went away; nothing to clean up
		}
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
