package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"netfail/internal/clock"
)

var update = flag.Bool("update", false, "rewrite golden files")

func fakeStart() time.Time {
	return time.Date(2011, 6, 1, 0, 0, 0, 0, time.UTC)
}

// buildFixture records a deterministic span forest off a fake clock:
// a pipeline-shaped tree with counters, a parallel-shard level, and
// one span left open.
func buildFixture() *Tracer {
	clk := clock.NewFake(fakeStart())
	tr := NewTracerClock(clk)

	run := tr.Start("run")
	sim := run.Child("simulate")
	clk.Advance(2 * time.Second)
	sim.Add("syslog.sent", 50687)
	sim.Add("lsps", 12034)
	sim.End()

	an := run.Child("analyze")
	ex := an.Child("extract-syslog")
	for i := 0; i < 2; i++ {
		sh := ex.Child("worker[" + string(rune('0'+i)) + "]")
		clk.Advance(150 * time.Millisecond)
		sh.Add("tasks", int64(3+i))
		sh.End()
	}
	ex.Add("syslog.messages", 50687)
	ex.End()
	rec := an.Child("reconstruct")
	clk.Advance(750 * time.Microsecond)
	rec.End()
	an.End()
	run.End()

	open := tr.Start("report")
	_ = open // never ended: renders as open
	return tr
}

func TestWriteTreeGolden(t *testing.T) {
	tr := buildFixture()
	var buf bytes.Buffer
	if err := tr.WriteTree(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "tree.golden")
	if *update {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("span tree mismatch\n--- got ---\n%s--- want ---\n%s", buf.Bytes(), want)
	}
}

func TestChromeTraceIsValidJSON(t *testing.T) {
	tr := buildFixture()
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string           `json:"name"`
			Ph   string           `json:"ph"`
			Ts   int64            `json:"ts"`
			Dur  int64            `json:"dur"`
			Tid  int              `json:"tid"`
			Args map[string]int64 `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid trace JSON: %v", err)
	}
	if len(doc.TraceEvents) != 8 {
		t.Fatalf("got %d events, want 8", len(doc.TraceEvents))
	}
	tids := map[int]bool{}
	for _, ev := range doc.TraceEvents {
		if ev.Ph != "X" {
			t.Errorf("event %q: ph = %q, want X", ev.Name, ev.Ph)
		}
		if tids[ev.Tid] {
			t.Errorf("tid %d reused", ev.Tid)
		}
		tids[ev.Tid] = true
	}
	if doc.TraceEvents[1].Name != "simulate" || doc.TraceEvents[1].Args["syslog.sent"] != 50687 {
		t.Errorf("simulate event malformed: %+v", doc.TraceEvents[1])
	}
	if doc.TraceEvents[0].Ts != 0 {
		t.Errorf("first event ts = %d, want 0", doc.TraceEvents[0].Ts)
	}
}

func TestNilSafety(t *testing.T) {
	// Every disabled-path value must be inert: nil tracer, nil span,
	// nil registry, nil instruments, empty context.
	var tr *Tracer
	s := tr.Start("x")
	s.Add("c", 1)
	s.End()
	if s.Child("y") != nil {
		t.Error("nil span produced a child")
	}
	if got := tr.Snapshot(); got != nil {
		t.Errorf("nil tracer snapshot = %v", got)
	}

	var reg *Registry
	reg.Counter("c").Add(5)
	reg.Gauge("g").Set(5)
	if reg.Counter("c").Value() != 0 || reg.Snapshot() != nil {
		t.Error("nil registry retained state")
	}

	ctx := context.Background()
	if TracerFrom(ctx) != nil || RegistryFrom(ctx) != nil || SpanFrom(ctx) != nil {
		t.Error("empty context carried observability state")
	}
	if Enabled(ctx) {
		t.Error("empty context reports Enabled")
	}
	Emit(ctx, Event{Kind: StageStarted, Stage: "x"}) // must not panic
	Add(ctx, "c", 1)
	Shard(ctx, 1, 2)
	sctx, done := Stage(ctx, "s")
	if sctx != ctx {
		t.Error("disabled Stage derived a new context")
	}
	done()
}

func TestContextCarriers(t *testing.T) {
	tr := NewTracerClock(clock.NewFake(fakeStart()))
	reg := NewRegistry()
	var mu sync.Mutex
	var events []Event
	ctx := WithTracer(context.Background(), tr)
	ctx = WithRegistry(ctx, reg)
	ctx = WithProgress(ctx, func(ev Event) {
		mu.Lock()
		defer mu.Unlock()
		events = append(events, ev)
	})
	if !Enabled(ctx) {
		t.Fatal("instrumented context not Enabled")
	}

	sctx, done := Stage(ctx, "analyze")
	if StageName(sctx) != "analyze" {
		t.Errorf("StageName = %q", StageName(sctx))
	}
	Add(sctx, "items", 3)
	Add(sctx, "items", 4)
	Shard(sctx, 1, 2)
	done()

	if got := reg.Counter("items").Value(); got != 7 {
		t.Errorf("registry items = %d, want 7", got)
	}
	roots := tr.Snapshot()
	if len(roots) != 1 || roots[0].Name != "analyze" || !roots[0].Ended {
		t.Fatalf("span forest %+v", roots)
	}
	if len(roots[0].Counters) != 1 || roots[0].Counters[0] != (CounterValue{Name: "items", Value: 7}) {
		t.Errorf("span counters %+v", roots[0].Counters)
	}
	want := []Event{
		{Kind: StageStarted, Stage: "analyze"},
		{Kind: ShardDone, Stage: "analyze", Shard: 1, Shards: 2},
		{Kind: StageFinished, Stage: "analyze"},
	}
	mu.Lock()
	defer mu.Unlock()
	if len(events) != len(want) {
		t.Fatalf("events %v, want %v", events, want)
	}
	for i := range want {
		if events[i] != want[i] {
			t.Errorf("event[%d] = %v, want %v", i, events[i], want[i])
		}
	}
	if reg.Gauge("stage.analyze.mallocs") == nil {
		t.Error("stage malloc gauge missing")
	}
}

func TestRegistrySnapshotAndText(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("b.count").Add(2)
	reg.Counter("a.count").Add(1)
	reg.Gauge("c.gauge").Set(-3)
	snap := reg.Snapshot()
	if len(snap) != 3 || snap[0].Name != "a.count" || snap[2] != (MetricValue{Name: "c.gauge", Value: -3}) {
		t.Errorf("snapshot %+v", snap)
	}
	if got, want := reg.String(), `{"a.count": 1, "b.count": 2, "c.gauge": -3}`; got != want {
		t.Errorf("String() = %s, want %s", got, want)
	}
	if !json.Valid([]byte(reg.String())) {
		t.Error("String() is not valid JSON (expvar contract)")
	}
	var buf bytes.Buffer
	if err := reg.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if want := "metric a.count 1\nmetric b.count 2\nmetric c.gauge -3\n"; buf.String() != want {
		t.Errorf("WriteText = %q, want %q", buf.String(), want)
	}
}

func TestConcurrentUse(t *testing.T) {
	// Race-detector coverage: spans, counters, and progress from many
	// goroutines at once.
	tr := NewTracer()
	reg := NewRegistry()
	ctx := WithTracer(context.Background(), tr)
	ctx = WithRegistry(ctx, reg)
	ctx = WithProgress(ctx, func(Event) {})
	sctx, done := Stage(ctx, "parallel")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, shardDone := Stage(sctx, "shard")
			for j := 0; j < 100; j++ {
				Add(sctx, "ops", 1)
				Shard(sctx, j, 100)
			}
			shardDone()
		}()
	}
	wg.Wait()
	done()
	if got := reg.Counter("ops").Value(); got != 800 {
		t.Errorf("ops = %d, want 800", got)
	}
	roots := tr.Snapshot()
	if len(roots) != 1 || len(roots[0].Children) != 8 {
		t.Fatalf("expected 8 shard children, got %+v", roots)
	}
}

func TestDebugMux(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("listener.lsps").Add(42)
	Publish("netfail-test", reg)
	Publish("netfail-test", reg) // second publish must not panic
	srv := httptest.NewServer(DebugMux(reg))
	defer srv.Close()

	get := func(path string) string {
		t.Helper()
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		if _, err := buf.ReadFrom(resp.Body); err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != 200 {
			t.Fatalf("GET %s: %d", path, resp.StatusCode)
		}
		return buf.String()
	}
	if body := get("/debug/netfail"); !strings.Contains(body, `"listener.lsps": 42`) {
		t.Errorf("/debug/netfail = %s", body)
	}
	if body := get("/debug/vars"); !strings.Contains(body, "netfail-test") {
		t.Errorf("/debug/vars missing published registry: %.200s", body)
	}
}

func TestSpanEndTwiceKeepsFirstDuration(t *testing.T) {
	clk := clock.NewFake(fakeStart())
	tr := NewTracerClock(clk)
	s := tr.Start("x")
	clk.Advance(time.Second)
	s.End()
	clk.Advance(time.Hour)
	s.End()
	if got := tr.Snapshot()[0].Dur; got != time.Second {
		t.Errorf("dur = %v, want 1s", got)
	}
}
