package obs

import (
	"fmt"
	"io"
	"strings"
	"time"
)

// WriteTree renders the recorded span forest as an indented text
// tree: one line per span with its wall duration and counters,
// children indented two spaces under their parent. This is the
// `netfail-analyze -trace` output.
//
//	analyze                 41ms
//	  extract-syslog        12ms  syslog.messages=50687
//	  reconstruct            9ms
//
// Durations come from the tracer's clock, so a clock.Fake makes the
// output fully deterministic (the golden-file test pins it).
func (t *Tracer) WriteTree(w io.Writer) error {
	var lines []treeLine
	for _, root := range t.Snapshot() {
		collectLines(&lines, root, 0)
	}
	width := 0
	for _, l := range lines {
		if n := 2*l.depth + len(l.info.Name); n > width {
			width = n
		}
	}
	for _, l := range lines {
		indent := strings.Repeat("  ", l.depth)
		pad := strings.Repeat(" ", width-2*l.depth-len(l.info.Name))
		dur := formatDur(l.info)
		if _, err := fmt.Fprintf(w, "%s%s%s  %10s", indent, l.info.Name, pad, dur); err != nil {
			return err
		}
		for _, c := range l.info.Counters {
			if _, err := fmt.Fprintf(w, "  %s=%d", c.Name, c.Value); err != nil {
				return err
			}
		}
		if _, err := io.WriteString(w, "\n"); err != nil {
			return err
		}
	}
	return nil
}

type treeLine struct {
	info  *SpanInfo
	depth int
}

func collectLines(lines *[]treeLine, info *SpanInfo, depth int) {
	*lines = append(*lines, treeLine{info: info, depth: depth})
	for _, c := range info.Children {
		collectLines(lines, c, depth+1)
	}
}

// formatDur renders a span's duration, marking still-open spans.
func formatDur(info *SpanInfo) string {
	if !info.Ended {
		return "open"
	}
	return roundDur(info.Dur).String()
}

// roundDur trims durations to a readable precision: sub-millisecond
// spans keep microseconds, everything else rounds to 0.1ms.
func roundDur(d time.Duration) time.Duration {
	if d < time.Millisecond {
		return d.Round(time.Microsecond)
	}
	return d.Round(100 * time.Microsecond)
}
