// Package obs is the pipeline observability layer: a deterministic
// hierarchical span tracer, a metrics registry of named counters and
// gauges, and an optional progress-event stream — all stdlib-only and
// all strictly observational.
//
// The §3.4 pipeline (simulate → mine → listen → ticket-verify → match
// → analyze → report) is long, parallel, and — before this package —
// opaque: no stage timings, no message accounting, no way to see
// where a 13-month campaign spends its time or drops its records.
// Everything here rides along a context.Context (see WithTracer,
// WithRegistry, WithProgress), so instrumentation reaches every stage
// and every pool shard without widening a single stage signature
// beyond the context it already takes for cancellation.
//
// Three invariants shape the design:
//
//   - Observation never changes results. Tracing, metrics, and
//     progress influence no iteration order, no merge order, and no
//     rendered byte; the byte-identical-report contract
//     (TestParallelismIsByteIdentical) holds with the full
//     observability stack attached.
//   - Disabled means free. Every entry point is nil-safe: a nil
//     *Tracer, nil *Registry, nil *Span, or absent context key
//     degenerates to a no-op, so uninstrumented runs pay only a
//     context lookup per pipeline stage.
//   - Wall time flows through internal/clock. The tracer reads its
//     clock via the injected clock.Clock, never time.Now (the
//     detclock analyzer enforces this repo-wide), so tests pin span
//     durations with a clock.Fake and golden-file the renderers.
package obs

import (
	"sort"
	"sync"
	"time"

	"netfail/internal/clock"
)

// A Tracer records a forest of hierarchical spans: one per pipeline
// stage, plus per-worker shard spans under the parallel stages. All
// methods are safe for concurrent use; a nil *Tracer is a valid no-op
// tracer.
type Tracer struct {
	clk clock.Clock

	mu    sync.Mutex
	roots []*Span // guarded by mu
	seq   int     // guarded by mu
}

// NewTracer returns a tracer timing spans off the system wall clock.
func NewTracer() *Tracer { return NewTracerClock(clock.System()) }

// NewTracerClock returns a tracer timing spans off clk; tests inject
// a clock.Fake for deterministic durations.
func NewTracerClock(clk clock.Clock) *Tracer { return &Tracer{clk: clk} }

// A Span is one timed region of the pipeline: a stage, a sub-stage,
// or a parallel shard. Spans form a tree under their Tracer. A nil
// *Span is a valid no-op (the disabled-tracing fast path), so callers
// never branch on whether tracing is on.
//
// Mutable span state (duration, counters, children) is protected by
// the owning tracer's mutex.
type Span struct {
	tracer *Tracer
	name   string
	parent *Span
	start  time.Time
	seq    int

	ended    bool
	dur      time.Duration
	counters map[string]int64
	children []*Span
}

// Start begins a new root span.
func (t *Tracer) Start(name string) *Span { return t.span(nil, name) }

func (t *Tracer) span(parent *Span, name string) *Span {
	if t == nil {
		return nil
	}
	now := t.clk.Now()
	t.mu.Lock()
	defer t.mu.Unlock()
	t.seq++
	s := &Span{tracer: t, name: name, parent: parent, start: now, seq: t.seq}
	if parent == nil {
		t.roots = append(t.roots, s)
	} else {
		parent.children = append(parent.children, s)
	}
	return s
}

// Child begins a sub-span of s.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	return s.tracer.span(s, name)
}

// End closes the span, fixing its wall duration. Ending twice keeps
// the first duration; ending a nil span is a no-op.
func (s *Span) End() {
	if s == nil {
		return
	}
	now := s.tracer.clk.Now()
	s.tracer.mu.Lock()
	defer s.tracer.mu.Unlock()
	if !s.ended {
		s.ended = true
		s.dur = now.Sub(s.start)
	}
}

// Add folds n into the span's named counter.
func (s *Span) Add(counter string, n int64) {
	if s == nil {
		return
	}
	s.tracer.mu.Lock()
	defer s.tracer.mu.Unlock()
	if s.counters == nil {
		s.counters = make(map[string]int64)
	}
	s.counters[counter] += n
}

// Name returns the span's name; empty for a nil span.
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// A SpanInfo is an immutable snapshot of one span, safe to walk and
// render while the pipeline is still running.
type SpanInfo struct {
	// Name is the stage or shard name.
	Name string
	// Start is the instant the span began.
	Start time.Time
	// Dur is the wall duration; zero with Ended false means the span
	// is still open.
	Dur time.Duration
	// Ended reports whether End was called.
	Ended bool
	// Counters are the span's counters sorted by name.
	Counters []CounterValue
	// Children are the sub-spans in creation order.
	Children []*SpanInfo
}

// A CounterValue is one named span counter.
type CounterValue struct {
	Name  string
	Value int64
}

// Snapshot returns an immutable copy of the recorded span forest,
// roots in creation order.
func (t *Tracer) Snapshot() []*SpanInfo {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]*SpanInfo, len(t.roots))
	for i, s := range t.roots {
		out[i] = s.infoLocked()
	}
	return out
}

// infoLocked copies one span subtree; the tracer mutex is held.
func (s *Span) infoLocked() *SpanInfo {
	info := &SpanInfo{
		Name:  s.name,
		Start: s.start,
		Dur:   s.dur,
		Ended: s.ended,
	}
	if len(s.counters) > 0 {
		info.Counters = make([]CounterValue, 0, len(s.counters))
		for name, v := range s.counters {
			info.Counters = append(info.Counters, CounterValue{Name: name, Value: v})
		}
		sort.Slice(info.Counters, func(i, j int) bool {
			return info.Counters[i].Name < info.Counters[j].Name
		})
	}
	for _, c := range s.children {
		info.Children = append(info.Children, c.infoLocked())
	}
	return info
}
