package obs

import (
	"context"
	"runtime"
)

// The context is the carrier for the whole observability layer:
// attaching a tracer, registry, or progress callback to the context a
// pipeline entry point receives instruments every stage and every
// pool shard underneath it, with no further plumbing. Absent keys
// read back as nil, and every consumer here is nil-safe, so an
// uninstrumented context is the fast path.

type ctxKey int

const (
	tracerKey ctxKey = iota
	spanKey
	registryKey
	progressKey
	stageKey
)

// WithTracer attaches a span tracer to the context; nil t returns ctx
// unchanged.
func WithTracer(ctx context.Context, t *Tracer) context.Context {
	if t == nil {
		return ctx
	}
	return context.WithValue(ctx, tracerKey, t)
}

// TracerFrom returns the attached tracer, or nil.
func TracerFrom(ctx context.Context) *Tracer {
	t, _ := ctx.Value(tracerKey).(*Tracer)
	return t
}

// WithRegistry attaches a metrics registry to the context; nil r
// returns ctx unchanged.
func WithRegistry(ctx context.Context, r *Registry) context.Context {
	if r == nil {
		return ctx
	}
	return context.WithValue(ctx, registryKey, r)
}

// RegistryFrom returns the attached registry, or nil.
func RegistryFrom(ctx context.Context) *Registry {
	r, _ := ctx.Value(registryKey).(*Registry)
	return r
}

// WithProgress attaches a progress callback to the context; nil fn
// returns ctx unchanged.
func WithProgress(ctx context.Context, fn ProgressFunc) context.Context {
	if fn == nil {
		return ctx
	}
	return context.WithValue(ctx, progressKey, fn)
}

// Emit delivers ev to the attached progress callback, if any.
func Emit(ctx context.Context, ev Event) {
	if fn, _ := ctx.Value(progressKey).(ProgressFunc); fn != nil {
		fn(ev)
	}
}

// Enabled reports whether any observability consumer — tracer,
// registry, or progress callback — is attached. Stages use it to
// gate work that exists only to be observed (e.g. the metrics-only
// match accounting).
func Enabled(ctx context.Context) bool {
	if TracerFrom(ctx) != nil || RegistryFrom(ctx) != nil {
		return true
	}
	fn, _ := ctx.Value(progressKey).(ProgressFunc)
	return fn != nil
}

// StartSpan begins a span named name under the context's current
// span (or as a root) and returns the derived context carrying it.
// Without a tracer attached it returns (ctx, nil) untouched.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	t := TracerFrom(ctx)
	if t == nil {
		return ctx, nil
	}
	var s *Span
	if parent := SpanFrom(ctx); parent != nil {
		s = parent.Child(name)
	} else {
		s = t.Start(name)
	}
	return context.WithValue(ctx, spanKey, s), s
}

// SpanFrom returns the context's current span, or nil.
func SpanFrom(ctx context.Context) *Span {
	s, _ := ctx.Value(spanKey).(*Span)
	return s
}

// StageName returns the name of the innermost stage entered via
// Stage, or "" outside any stage. Pool shards use it to attribute
// their progress events.
func StageName(ctx context.Context) string {
	name, _ := ctx.Value(stageKey).(string)
	return name
}

// Stage enters a named pipeline stage: it starts a span (when a
// tracer is attached), emits a StageStarted progress event, and
// returns the derived context plus a done func that closes the span
// and emits StageFinished. With a registry attached, done also
// records the stage's approximate allocation delta as the gauge
// "stage.<name>.mallocs" (approximate because concurrent stages share
// the process heap).
func Stage(ctx context.Context, name string) (context.Context, func()) {
	if !Enabled(ctx) {
		return ctx, func() {}
	}
	ctx = context.WithValue(ctx, stageKey, name)
	ctx, span := StartSpan(ctx, name)
	Emit(ctx, Event{Kind: StageStarted, Stage: name})
	reg := RegistryFrom(ctx)
	var mallocs uint64
	if reg != nil {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		mallocs = ms.Mallocs
	}
	return ctx, func() {
		span.End()
		if reg != nil {
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			reg.Gauge("stage." + name + ".mallocs").Set(int64(ms.Mallocs - mallocs))
		}
		Emit(ctx, Event{Kind: StageFinished, Stage: name})
	}
}

// Add folds n into both the current span's counter and the registry
// counter of the same name — the one-call idiom pipeline stages use
// for their accounting.
func Add(ctx context.Context, name string, n int64) {
	SpanFrom(ctx).Add(name, n)
	RegistryFrom(ctx).Counter(name).Add(n)
}

// Shard emits a ShardDone progress event for the current stage: done
// of total tasks have completed. Safe to call from pool workers; the
// progress consumer synchronizes.
func Shard(ctx context.Context, done, total int) {
	if name := StageName(ctx); name != "" {
		Emit(ctx, Event{Kind: ShardDone, Stage: name, Shard: done, Shards: total})
	}
}
