// Package backoff is the repository's single retry-delay policy:
// jittered exponential backoff with an explicit retry budget,
// deterministic in a seed, and (when a total budget is set) driven by
// the injected internal/clock rather than the wall clock.
//
// Before this package existed the same loop was hand-rolled twice —
// in syslog.Collector's read-retry and in cmd/netfail-listener's
// capture loop — with the delay schedule, the give-up condition, and
// the terminal-error wording each duplicated. Retry behaviour is
// load-bearing for the serving path (a restart storm with synchronized
// retries is itself an overload), so the schedule lives here once:
// callers construct a Backoff from a Policy and ask it for the next
// delay, and tests pin the exact schedule a seed produces.
package backoff

import (
	"context"
	"math/rand"
	"time"

	"netfail/internal/clock"
)

// Policy parameterizes a backoff schedule. The zero value is not
// useful; start from Default and override.
type Policy struct {
	// Base is the first retry delay.
	Base time.Duration
	// Max caps each individual delay (0 = uncapped).
	Max time.Duration
	// Factor is the per-retry growth multiplier (values below 1 are
	// treated as 2, the conventional doubling).
	Factor float64
	// Jitter is the fraction of each delay that is randomized away,
	// in [0, 1]: a delay d becomes d - Jitter*d*u for uniform u in
	// [0,1). Zero keeps the schedule exact; DefaultJitter decorrelates
	// a fleet of restarting sources so they do not retry in lockstep.
	Jitter float64
	// Retries is the consecutive-failure budget: after this many
	// delays Next reports exhaustion (0 = retry forever).
	Retries int
	// Seed drives the jitter stream; identical seeds produce
	// identical schedules. Ignored when Jitter is 0.
	Seed int64
	// Budget is the total time Retry may spend across all attempts,
	// measured against the injected clock (0 = no time budget, only
	// the Retries count limits). A retry whose delay would overrun
	// the budget is not taken.
	Budget time.Duration
}

// DefaultJitter is the jitter fraction the serving path uses for
// source restarts.
const DefaultJitter = 0.5

// Default is the retry policy the capture paths share: 1ms doubling,
// five retries, no jitter — the exact schedule the collector and
// listener hand-rolled before this package (1, 2, 4, 8, 16 ms).
var Default = Policy{Base: time.Millisecond, Factor: 2, Retries: 5}

// New constructs a Backoff at the start of its schedule.
func (p Policy) New() *Backoff {
	b := &Backoff{p: p}
	if p.Jitter > 0 {
		b.rng = rand.New(rand.NewSource(p.Seed))
	}
	return b
}

// A Backoff walks one Policy's delay schedule. It is not safe for
// concurrent use; each retrying loop owns its own Backoff.
type Backoff struct {
	p   Policy
	n   int // consecutive failures so far
	rng *rand.Rand
}

// Next returns the delay to sleep before the n-th consecutive retry,
// or ok=false when the retry budget is exhausted and the caller must
// surface a terminal error instead of sleeping again.
func (b *Backoff) Next() (d time.Duration, ok bool) {
	b.n++
	if b.p.Retries > 0 && b.n > b.p.Retries {
		return 0, false
	}
	factor := b.p.Factor
	if factor < 1 {
		factor = 2
	}
	d = b.p.Base
	for i := 1; i < b.n; i++ {
		d = time.Duration(float64(d) * factor)
		if b.p.Max > 0 && d >= b.p.Max {
			d = b.p.Max
			break
		}
	}
	if b.p.Max > 0 && d > b.p.Max {
		d = b.p.Max
	}
	if b.rng != nil && d > 0 {
		d -= time.Duration(b.p.Jitter * float64(d) * b.rng.Float64())
	}
	return d, true
}

// Attempts returns the consecutive-failure count since the last
// Reset.
func (b *Backoff) Attempts() int { return b.n }

// Reset marks the operation healthy again: the next failure restarts
// the schedule from Base.
func (b *Backoff) Reset() { b.n = 0 }

// SleepCtx sleeps for d or until ctx is done, whichever comes first,
// returning ctx.Err() if the context ended the sleep early. It is the
// cancellation-aware sleep every supervised retry loop must use: a
// draining daemon cannot wait out a 30-second backoff.
func SleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Retry runs op until it succeeds, the policy's retry budget is
// exhausted, or ctx is done (returning ctx.Err()). Exhaustion — the
// Retries count spent, or the next delay overrunning the Budget as
// measured by the injected clock — returns the last error from op.
func Retry(ctx context.Context, clk clock.Clock, p Policy, op func() error) error {
	b := p.New()
	start := clk.Now()
	for {
		err := op()
		if err == nil {
			return nil
		}
		d, ok := b.Next()
		if !ok {
			return err
		}
		if p.Budget > 0 && clk.Now().Add(d).Sub(start) > p.Budget {
			return err
		}
		if serr := SleepCtx(ctx, d); serr != nil {
			return serr
		}
	}
}
