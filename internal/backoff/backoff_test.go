package backoff_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"netfail/internal/backoff"
	"netfail/internal/clock"
)

// TestDefaultscheduleIsPinned pins the exact delay sequence the
// capture paths retried with before the dedup onto this package:
// 1, 2, 4, 8, 16 ms, then exhaustion. Any change to this schedule is
// a behaviour change in both syslog.Collector and netfail-listener
// and must show up here first.
func TestDefaultScheduleIsPinned(t *testing.T) {
	b := backoff.Default.New()
	want := []time.Duration{
		1 * time.Millisecond,
		2 * time.Millisecond,
		4 * time.Millisecond,
		8 * time.Millisecond,
		16 * time.Millisecond,
	}
	for i, w := range want {
		d, ok := b.Next()
		if !ok {
			t.Fatalf("Next() exhausted at attempt %d, want %d retries", i+1, len(want))
		}
		if d != w {
			t.Errorf("attempt %d: delay = %v, want %v", i+1, d, w)
		}
	}
	if _, ok := b.Next(); ok {
		t.Error("Next() after the retry budget must report exhaustion")
	}
	if got := b.Attempts(); got != 6 {
		t.Errorf("Attempts() = %d, want 6", got)
	}
}

// TestJitterIsSeeded pins that identical seeds produce identical
// jittered schedules, different seeds different ones, and every
// jittered delay stays within (d - Jitter*d, d].
func TestJitterIsSeeded(t *testing.T) {
	p := backoff.Policy{Base: 100 * time.Millisecond, Factor: 2, Retries: 6, Jitter: 0.5, Seed: 42}
	run := func(p backoff.Policy) []time.Duration {
		b := p.New()
		var out []time.Duration
		for {
			d, ok := b.Next()
			if !ok {
				return out
			}
			out = append(out, d)
		}
	}
	a, bs := run(p), run(p)
	for i := range a {
		if a[i] != bs[i] {
			t.Fatalf("same seed, attempt %d: %v vs %v", i+1, a[i], bs[i])
		}
	}
	exact := p
	exact.Jitter = 0
	full := run(exact)
	for i := range a {
		lo := full[i] - time.Duration(0.5*float64(full[i]))
		if a[i] <= lo || a[i] > full[i] {
			t.Errorf("attempt %d: jittered delay %v outside (%v, %v]", i+1, a[i], lo, full[i])
		}
	}
	p.Seed = 43
	other := run(p)
	same := true
	for i := range a {
		if a[i] != other[i] {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical jittered schedules")
	}
}

// TestMaxCapsDelays pins the cap: growth stops at Max.
func TestMaxCapsDelays(t *testing.T) {
	b := backoff.Policy{Base: time.Millisecond, Factor: 2, Max: 5 * time.Millisecond, Retries: 5}.New()
	want := []time.Duration{1 * time.Millisecond, 2 * time.Millisecond, 4 * time.Millisecond, 5 * time.Millisecond, 5 * time.Millisecond}
	for i, w := range want {
		d, ok := b.Next()
		if !ok || d != w {
			t.Errorf("attempt %d: (%v, %v), want (%v, true)", i+1, d, ok, w)
		}
	}
}

// TestResetRestartsSchedule pins that a success mid-stream restarts
// the schedule from Base — the collector's failures=0 reset.
func TestResetRestartsSchedule(t *testing.T) {
	b := backoff.Default.New()
	b.Next()
	b.Next()
	b.Reset()
	d, ok := b.Next()
	if !ok || d != time.Millisecond {
		t.Fatalf("after Reset: Next() = (%v, %v), want (1ms, true)", d, ok)
	}
}

// TestRetryStopsOnBudget drives Retry against a fake clock: the op
// fails forever while the fake advances, and the clock-measured
// budget — not wall time — ends the retrying.
func TestRetryStopsOnBudget(t *testing.T) {
	fake := clock.NewFake(time.Unix(1000, 0))
	boom := errors.New("boom")
	calls := 0
	p := backoff.Policy{Base: time.Microsecond, Factor: 2, Budget: 10 * time.Minute}
	err := backoff.Retry(context.Background(), fake, p, func() error {
		calls++
		fake.Advance(4 * time.Minute)
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("Retry = %v, want the op's terminal error", err)
	}
	// Budget 10m, op advances 4m per call: attempts at elapsed 4m and
	// 8m retry, the attempt at 12m overruns and stops — 3 calls.
	if calls != 3 {
		t.Errorf("op ran %d times, want 3 (clock budget must bound retries)", calls)
	}
}

// TestRetryHonorsCancellation pins that a canceled context ends a
// retry loop mid-backoff with ctx's error.
func TestRetryHonorsCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	p := backoff.Policy{Base: time.Hour} // would sleep an hour without cancellation
	err := backoff.Retry(ctx, clock.NewFake(time.Unix(0, 0)), p, func() error {
		return errors.New("always")
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Retry = %v, want context.Canceled", err)
	}
}

// TestRetrySucceedsAfterFailures pins the success path: op's eventual
// nil is returned and no further attempts run.
func TestRetrySucceedsAfterFailures(t *testing.T) {
	calls := 0
	p := backoff.Policy{Base: time.Microsecond, Retries: 5}
	err := backoff.Retry(context.Background(), clock.NewFake(time.Unix(0, 0)), p, func() error {
		calls++
		if calls < 3 {
			return errors.New("transient")
		}
		return nil
	})
	if err != nil || calls != 3 {
		t.Fatalf("Retry = %v after %d calls, want nil after 3", err, calls)
	}
}
