package netfail

// Cancellation contract of the context-first API: canceling the
// context stops the pipeline at the next stage or shard boundary with
// context.Canceled, and the worker pools drain rather than leak.

import (
	"context"
	"errors"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCanceledBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Run(ctx, smallConfig(1)); !errors.Is(err, context.Canceled) {
		t.Errorf("Run on canceled ctx: err = %v, want context.Canceled", err)
	}
	if _, err := Simulate(ctx, smallConfig(1)); !errors.Is(err, context.Canceled) {
		t.Errorf("Simulate on canceled ctx: err = %v, want context.Canceled", err)
	}
	camp, err := Simulate(context.Background(), smallConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Analyze(ctx, camp); !errors.Is(err, context.Canceled) {
		t.Errorf("Analyze on canceled ctx: err = %v, want context.Canceled", err)
	}
	if _, err := Listen(ctx, camp.Network, camp); !errors.Is(err, context.Canceled) {
		t.Errorf("Listen on canceled ctx: err = %v, want context.Canceled", err)
	}
}

func TestCancelMidAnalyze(t *testing.T) {
	camp, err := Simulate(context.Background(), smallConfig(5))
	if err != nil {
		t.Fatal(err)
	}
	before := runtime.NumGoroutine()
	for _, stage := range []string{"listen", "extract-syslog", "reconstruct", "sanitize"} {
		ctx, cancel := context.WithCancel(context.Background())
		var once sync.Once
		target := stage
		_, err := Analyze(ctx, camp, WithParallelism(4),
			WithProgress(func(ev ProgressEvent) {
				if ev.Kind == StageStarted && ev.Stage == target {
					once.Do(cancel)
				}
			}))
		cancel()
		if !errors.Is(err, context.Canceled) {
			t.Errorf("cancel at %q: err = %v, want context.Canceled", stage, err)
		}
	}
	// The pools must have drained: give the runtime a moment, then
	// insist the goroutine count returns to (near) the baseline.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before+2 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > before+2 {
		t.Errorf("goroutines leaked after cancellation: %d before, %d after", before, n)
	}
}

func TestCancelMidSimulate(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var once sync.Once
	_, err := Simulate(ctx, smallConfig(6), WithProgress(func(ev ProgressEvent) {
		if ev.Kind == StageStarted && ev.Stage == "simulate" {
			once.Do(cancel)
		}
	}))
	if !errors.Is(err, context.Canceled) {
		t.Errorf("Simulate canceled at start: err = %v, want context.Canceled", err)
	}
}

func TestListenReportsRecordIndex(t *testing.T) {
	camp, err := Simulate(context.Background(), smallConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	if len(camp.LSPLog) < 6 {
		t.Fatalf("campaign too small: %d LSP records", len(camp.LSPLog))
	}
	// Corrupt record 5 in place: a truncated PDU fails to decode.
	orig := camp.LSPLog[5].Data
	camp.LSPLog[5].Data = []byte{0x83, 0x01}
	defer func() { camp.LSPLog[5].Data = orig }()

	_, err = Listen(context.Background(), camp.Network, camp)
	if err == nil {
		t.Fatal("Listen accepted a corrupt LSP record")
	}
	if !strings.Contains(err.Error(), "record 5") {
		t.Errorf("error %q does not name the failing record index", err)
	}
	if !strings.Contains(err.Error(), camp.LSPLog[5].Time.UTC().Format("2006")) {
		t.Errorf("error %q does not carry the record timestamp", err)
	}
}
