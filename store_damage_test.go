package netfail

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"netfail/internal/store"
)

// Damage drills for the store: every component (segment, sparse
// index, postings, manifest) gets deterministically damaged, then the
// strict reader must refuse with an offset-accurate error and the
// lenient reader must salvage — returning a subset of the clean
// answers (indexes and postings are accelerators: losing them may
// hide records, never misattribute them) with accurate accounting.

// buildDamageStore runs one small campaign into a store directory.
func buildDamageStore(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	if _, err := Run(context.Background(), smallConfig(2), WithStoreDir(dir)); err != nil {
		t.Fatal(err)
	}
	return dir
}

// copyStore clones a store directory so each damage case starts from
// the same clean bytes.
func copyStore(t *testing.T, src string) string {
	t.Helper()
	dst := t.TempDir()
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dst
}

// flipByte flips one byte in the middle of the file's frame region,
// past the header so the reader's resync logic is what gets tested.
func flipByte(t *testing.T, path string) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) < 64 {
		t.Fatalf("%s too small to damage meaningfully (%d bytes)", path, len(data))
	}
	data[len(data)/2] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

// asJSONSet renders records as a multiset of JSON lines for
// subset checks.
func asJSONSet(t *testing.T, vs []string) map[string]int {
	set := make(map[string]int)
	for _, v := range vs {
		set[v]++
	}
	return set
}

func jsonLines[T any](t *testing.T, recs []T) []string {
	t.Helper()
	out := make([]string, len(recs))
	for i := range recs {
		out[i] = mustJSON(t, recs[i])
	}
	return out
}

// assertSubset fails unless got ⊆ want as multisets.
func assertSubset(t *testing.T, what string, got, want []string) {
	t.Helper()
	if len(got) >= len(want) {
		t.Errorf("%s: salvage returned %d records, clean store has %d — damage lost nothing?", what, len(got), len(want))
	}
	wset := asJSONSet(t, want)
	for _, g := range got {
		if wset[g] == 0 {
			t.Fatalf("%s: salvaged record not in the clean result set (misattribution): %s", what, g)
		}
		wset[g]--
	}
}

func salvageFor(s *store.Store, name string) *store.ComponentSalvage {
	for _, cs := range s.Salvage() {
		if cs.Name == name {
			return &cs
		}
	}
	return nil
}

func TestStoreSegmentDamage(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign simulation in -short mode")
	}
	ctx := context.Background()
	clean := buildDamageStore(t)
	cs, err := store.Open(clean)
	if err != nil {
		t.Fatal(err)
	}
	cleanFails, err := cs.Failures(ctx)
	if err != nil {
		t.Fatal(err)
	}
	cleanTrans, err := cs.Transitions(ctx)
	if err != nil {
		t.Fatal(err)
	}
	cleanMsgs, err := cs.Messages(ctx)
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		file  string
		query func(s *store.Store) ([]string, error)
		clean []string
	}{
		{store.FailuresSegment, func(s *store.Store) ([]string, error) {
			rs, err := s.Failures(ctx)
			return jsonLines(t, rs), err
		}, jsonLines(t, cleanFails)},
		{store.TransitionsSegment, func(s *store.Store) ([]string, error) {
			rs, err := s.Transitions(ctx)
			return jsonLines(t, rs), err
		}, jsonLines(t, cleanTrans)},
		{store.MessageSegmentName(0), func(s *store.Store) ([]string, error) {
			rs, err := s.Messages(ctx)
			return jsonLines(t, rs), err
		}, jsonLines(t, cleanMsgs)},
	}
	for _, tc := range cases {
		t.Run(tc.file, func(t *testing.T) {
			dir := copyStore(t, clean)
			flipByte(t, filepath.Join(dir, tc.file))

			strict, err := store.Open(dir)
			if err != nil {
				t.Fatalf("strict open must succeed (damage is in a segment): %v", err)
			}
			if _, err := tc.query(strict); err == nil {
				t.Error("strict query crossed a damaged frame without failing")
			} else if !strings.Contains(err.Error(), "at offset") {
				t.Errorf("strict error %q does not pin the damaged offset", err)
			}

			sal, err := store.OpenLenient(dir)
			if err != nil {
				t.Fatalf("lenient open: %v", err)
			}
			got, err := tc.query(sal)
			if err != nil {
				t.Fatalf("lenient query: %v", err)
			}
			assertSubset(t, tc.file, got, tc.clean)
			sv := salvageFor(sal, tc.file)
			if sv == nil || sv.Report.Skipped == 0 {
				t.Errorf("salvage accounting for %s missing or empty: %+v", tc.file, sv)
			} else if sv.Report.Kept == 0 {
				t.Errorf("salvage kept nothing from %s: %s", tc.file, sv.Report)
			}
		})
	}
}

func TestStoreAdvisoryFileDamage(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign simulation in -short mode")
	}
	ctx := context.Background()
	clean := buildDamageStore(t)
	cs, err := store.Open(clean)
	if err != nil {
		t.Fatal(err)
	}
	cleanFails, err := cs.Failures(ctx)
	if err != nil {
		t.Fatal(err)
	}
	link := cleanFails[0].Link
	cleanByLink, err := cs.Failures(ctx, store.WithLink(link))
	if err != nil {
		t.Fatal(err)
	}

	// Damaged index and postings files: strict refuses at Open (the
	// files are loaded eagerly), lenient salvages and — because these
	// files are accelerators, not authority — still answers every
	// query identically to the clean store.
	for _, file := range []string{store.FailuresIndex, store.FailuresPostings} {
		t.Run(file, func(t *testing.T) {
			dir := copyStore(t, clean)
			// Truncating mid-entry tears the file; a torn advisory file
			// must fail strict opens.
			data, err := os.ReadFile(filepath.Join(dir, file))
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(filepath.Join(dir, file), data[:len(data)-3], 0o644); err != nil {
				t.Fatal(err)
			}

			if _, err := store.Open(dir); err == nil {
				t.Errorf("strict open accepted a torn %s", file)
			}

			sal, err := store.OpenLenient(dir)
			if err != nil {
				t.Fatalf("lenient open: %v", err)
			}
			got, err := sal.Failures(ctx, store.WithLink(link))
			if err != nil {
				t.Fatal(err)
			}
			compareJSON(t, "per-link failures with damaged "+file, got, cleanByLink)
			all, err := sal.Failures(ctx)
			if err != nil {
				t.Fatal(err)
			}
			compareJSON(t, "failures with damaged "+file, all, cleanFails)
		})
	}

	// A deleted advisory file is not damage at all: both modes fall
	// back to scanning and answer identically.
	t.Run("missing advisory files", func(t *testing.T) {
		dir := copyStore(t, clean)
		for _, file := range []string{store.FailuresIndex, store.FailuresPostings} {
			if err := os.Remove(filepath.Join(dir, file)); err != nil {
				t.Fatal(err)
			}
		}
		strict, err := store.Open(dir)
		if err != nil {
			t.Fatalf("strict open with missing advisory files: %v", err)
		}
		got, err := strict.Failures(ctx, store.WithLink(link))
		if err != nil {
			t.Fatal(err)
		}
		compareJSON(t, "per-link failures without advisory files", got, cleanByLink)
	})
}

func TestStoreManifestDamage(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign simulation in -short mode")
	}
	ctx := context.Background()
	clean := buildDamageStore(t)
	cs, err := store.Open(clean)
	if err != nil {
		t.Fatal(err)
	}
	cleanFails, err := cs.Failures(ctx)
	if err != nil {
		t.Fatal(err)
	}

	t.Run("garbage around JSON", func(t *testing.T) {
		dir := copyStore(t, clean)
		path := filepath.Join(dir, store.ManifestName)
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		dirty := append([]byte("\x00\x01torn header residue\n"), data...)
		dirty = append(dirty, []byte("\x00tail")...)
		if err := os.WriteFile(path, dirty, 0o644); err != nil {
			t.Fatal(err)
		}

		if _, err := store.Open(dir); err == nil {
			t.Error("strict open accepted a manifest with leading garbage")
		}
		sal, err := store.OpenLenient(dir)
		if err != nil {
			t.Fatalf("lenient open: %v", err)
		}
		got, err := sal.Failures(ctx)
		if err != nil {
			t.Fatal(err)
		}
		compareJSON(t, "failures after manifest salvage", got, cleanFails)
		sv := salvageFor(sal, store.ManifestName)
		if sv == nil || sv.Report.Clean() {
			t.Error("manifest salvage unaccounted")
		}
	})

	t.Run("corruption inside JSON", func(t *testing.T) {
		// The manifest holds the record catalogs; damage inside the
		// object is fatal in both modes.
		dir := copyStore(t, clean)
		path := filepath.Join(dir, store.ManifestName)
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := store.Open(dir); err == nil {
			t.Error("strict open accepted a torn manifest")
		}
		if _, err := store.OpenLenient(dir); err == nil {
			t.Error("lenient open accepted a torn manifest")
		}
	})

	t.Run("missing manifest", func(t *testing.T) {
		dir := copyStore(t, clean)
		if err := os.Remove(filepath.Join(dir, store.ManifestName)); err != nil {
			t.Fatal(err)
		}
		if _, err := store.Open(dir); err == nil {
			t.Error("strict open accepted a store without a manifest")
		}
		if _, err := store.OpenLenient(dir); err == nil {
			t.Error("lenient open accepted a store without a manifest")
		}
		if store.IsStoreDir(dir) {
			t.Error("IsStoreDir true without a manifest")
		}
	})
}
