module netfail

go 1.22
