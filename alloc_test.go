package netfail

import (
	"context"
	"testing"
	"time"

	"netfail/internal/core"
)

// TestSyslogExtractAllocBudget pins the full steady-state syslog
// extraction stage — link-event decode, topology attribution, merge —
// to amortized zero allocations per message. A long-lived (Extractor,
// result) pair is warmed once; after that every capture must reuse
// the grown scratch and result slices. It is the end-to-end companion
// to the per-function pins in internal/syslog and internal/trace: a
// per-message allocation added anywhere along the extraction path
// raises the rate by ~1.0 against a 0.01 budget, whether or not the
// offending function is annotated //netfail:hotpath. (The observability
// stage span costs a handful of fixed allocations per call, which the
// per-message budget absorbs at any realistic capture size.)
func TestSyslogExtractAllocBudget(t *testing.T) {
	camp, err := Simulate(context.Background(), benchMonthConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	mined, err := MineConfigs(camp)
	if err != nil {
		t.Fatal(err)
	}
	if len(camp.Syslog) == 0 {
		t.Fatal("simulation produced no syslog")
	}
	ex := core.NewExtractor(mined.Network)
	var st core.SyslogTraces
	ex.ExtractInto(context.Background(), camp.Syslog, 60*time.Second, 1, &st)
	avg := testing.AllocsPerRun(3, func() {
		ex.ExtractInto(context.Background(), camp.Syslog, 60*time.Second, 1, &st)
		if len(st.MergedAdj) == 0 {
			t.Fatal("no transitions")
		}
	})
	perMsg := avg / float64(len(camp.Syslog))
	if perMsg > 0.01 {
		t.Errorf("steady-state ExtractInto allocates %.4f times per message (%.0f over %d messages), budget is 0.01",
			perMsg, avg, len(camp.Syslog))
	}
}
