package netfail

import (
	"context"
	"testing"
	"time"

	"netfail/internal/core"
)

// TestSyslogExtractAllocBudget pins the full syslog extraction stage —
// parse, link-event decode, topology attribution, merge — to its
// amortized allocation rate per message (currently ~1.4: the parsed
// *Message, the *LinkEvent, and slice growth). It is the end-to-end
// companion to the per-function pins in internal/syslog and
// internal/trace: a per-message allocation added anywhere along the
// extraction path raises the rate by at least one and fails the pin,
// whether or not the offending function is annotated //netfail:hotpath.
func TestSyslogExtractAllocBudget(t *testing.T) {
	camp, err := Simulate(context.Background(), benchMonthConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	mined, err := MineConfigs(camp)
	if err != nil {
		t.Fatal(err)
	}
	if len(camp.Syslog) == 0 {
		t.Fatal("simulation produced no syslog")
	}
	avg := testing.AllocsPerRun(3, func() {
		st := core.ExtractSyslog(mined.Network, camp.Syslog, 60*time.Second)
		if len(st.MergedAdj) == 0 {
			t.Fatal("no transitions")
		}
	})
	perMsg := avg / float64(len(camp.Syslog))
	if perMsg > 2.0 {
		t.Errorf("ExtractSyslog allocates %.2f times per message (%.0f over %d messages), budget is 2.0",
			perMsg, avg, len(camp.Syslog))
	}
}
