package netfail

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"netfail/internal/capture"
	"netfail/internal/config"
	"netfail/internal/core"
	"netfail/internal/listener"
	"netfail/internal/netsim"
	"netfail/internal/obs"
	"netfail/internal/pool"
	"netfail/internal/salvage"
	"netfail/internal/store"
	"netfail/internal/syslog"
	"netfail/internal/tickets"
	"netfail/internal/topo"
)

// FabricSpec shapes the spine/leaf pods of a multi-domain campaign;
// see SimulateToCapture. DefaultFabricSpec sizes each pod so one
// domain is roughly one CENIC backbone's worth of links.
type FabricSpec = topo.FabricSpec

// DefaultFabricSpec returns the default pod shape (10 spines x 30
// leaves, ~300 links per domain) for the given domain count.
func DefaultFabricSpec(domains int) FabricSpec { return topo.DefaultFabricSpec(domains) }

// CaptureDirName is the subdirectory of a campaign directory holding
// the sharded spill capture (shard segments plus capture manifest).
const CaptureDirName = "capture"

// IsCaptureCampaign reports whether a campaign directory carries a
// sharded spill capture instead of flat syslog.log/lsps.log files.
func IsCaptureCampaign(dir string) bool {
	return capture.IsCaptureDir(filepath.Join(dir, CaptureDirName))
}

// CaptureSalvage names one capture component's salvage report, as
// returned by AnalyzeCaptureDir.
type CaptureSalvage struct {
	// Name identifies the component, e.g. "capture/shard-0000/syslog.seg".
	Name string
	// Report accounts the records kept and skipped.
	Report *salvage.Report
}

// SimulateToCapture runs a measurement campaign that spills its
// observation streams to disk instead of accumulating them in RAM,
// writing a complete campaign directory:
//
//	dir/
//	  capture/            sharded segments + capture manifest
//	  manifest.json       campaign metadata (window, counts, outages)
//	  configs/            router configuration archive
//	  tickets.json        trouble-ticket corpus
//	  customers.json      customer sites
//
// With fabric.Domains == 0 the campaign is the single CENIC-scale
// backbone from cfg, captured as one shard — event for event the same
// campaign Simulate produces, just streamed to disk. With
// fabric.Domains > 0 the backbone is joined by that many spine/leaf
// pod domains, each simulated independently (they are link-disjoint
// IS-IS areas) and captured to its own shard; per-domain simulations
// fan out over the WithParallelism worker pool.
//
// The returned Campaign carries everything except the Syslog and
// LSPLog slices, which live on disk; AnalyzeCaptureDir streams them
// back. Peak residency is one domain's working set, never the
// campaign's event volume.
func SimulateToCapture(ctx context.Context, cfg SimulationConfig, fabric FabricSpec, dir string, opts ...Option) (*Campaign, error) {
	ctx, o := resolve(ctx, opts)
	var camp *Campaign
	var err error
	if fabric.Domains > 0 {
		camp, err = netsim.RunShardedToCapture(ctx, cfg, fabric, filepath.Join(dir, CaptureDirName), o.ao.Parallelism)
	} else {
		camp, err = netsim.RunToCapture(ctx, cfg, filepath.Join(dir, CaptureDirName))
	}
	if err != nil {
		return nil, err
	}
	if err := writeCampaignMeta(dir, camp); err != nil {
		return nil, err
	}
	return camp, nil
}

// writeCampaignMeta writes the flat campaign artifacts (everything a
// netfail-sim directory holds except the event logs, which live in
// the capture shards).
func writeCampaignMeta(dir string, camp *Campaign) error {
	writeFile := func(name string, fn func(*os.File) error) error {
		f, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			return err
		}
		if err := fn(f); err != nil {
			f.Close()
			return fmt.Errorf("writing %s: %w", name, err)
		}
		return f.Close()
	}
	if err := writeFile("manifest.json", func(f *os.File) error {
		return camp.WriteManifest(f)
	}); err != nil {
		return err
	}
	corpus := tickets.Generate(camp.Config.Seed+1, camp.GroundTruthFailures(), tickets.DefaultParams())
	if err := writeFile("tickets.json", func(f *os.File) error {
		return tickets.WriteJSON(f, corpus)
	}); err != nil {
		return err
	}
	if err := writeFile("customers.json", func(f *os.File) error {
		return topo.WriteCustomersJSON(f, camp.Network.Customers)
	}); err != nil {
		return err
	}
	return camp.Archive.SaveDir(filepath.Join(dir, "configs"))
}

// AnalyzeCaptureDir runs the full analysis pipeline over a spilled
// campaign directory written by SimulateToCapture (or netfail-sim
// -spill): mine the config archive, stream every shard's syslog
// segment through per-shard extraction, replay the LSP segments
// through the passive IS-IS listener, and run the comparison.
//
// Shards are consumed in manifest order — the campaign's fixed domain
// order — and each shard's extraction merges by concatenation
// (domains are link-disjoint, and no downstream stage re-sorts
// transitions), so the report is byte-identical at every
// WithParallelism setting, and a single-shard capture reproduces the
// in-RAM pipeline's report byte for byte. Peak residency is one
// shard's messages, never the campaign's.
//
// In lenient mode damaged capture records are skipped and accounted
// in the returned salvage entries; in strict mode the first damaged
// frame aborts with a record- and offset-accurate error. Unparseable
// (but intact) syslog lines are skipped and accounted in both modes,
// mirroring the flat-file loader.
func AnalyzeCaptureDir(ctx context.Context, dir string, lenient bool, opts ...Option) (*Study, []CaptureSalvage, error) {
	ctx, o := resolve(ctx, opts)
	fail := func(err error) (*Study, []CaptureSalvage, error) { return nil, nil, err }
	var reports []CaptureSalvage

	_, loadDone := obs.Stage(ctx, "load")
	manifest, rep, err := readCampaignManifest(dir, lenient)
	if err != nil {
		loadDone()
		return fail(err)
	}
	if lenient {
		reports = append(reports, CaptureSalvage{"manifest.json", rep})
	}

	capDir := filepath.Join(dir, CaptureDirName)
	var cm *capture.Manifest
	if lenient {
		data, rerr := os.ReadFile(filepath.Join(capDir, "manifest.json"))
		if rerr != nil {
			loadDone()
			return fail(rerr)
		}
		var crep *salvage.Report
		cm, crep, err = capture.ReadManifestLenient(bytes.NewReader(data))
		if err == nil {
			reports = append(reports, CaptureSalvage{"capture/manifest.json", crep})
		}
	} else {
		cm, err = capture.ReadManifestDir(capDir)
	}
	if err != nil {
		loadDone()
		return fail(err)
	}

	archive, err := config.LoadDir(filepath.Join(dir, "configs"))
	if err != nil {
		loadDone()
		return fail(err)
	}
	mined, err := config.Mine(archive)
	if err != nil {
		loadDone()
		return fail(err)
	}

	corpus, customers, err := readCampaignSideFiles(dir)
	if err != nil {
		loadDone()
		return fail(err)
	}
	loadDone()

	mergeWindow := o.ao.MergeWindow
	if mergeWindow == 0 {
		mergeWindow = 60 * time.Second
	}
	workers := pool.Resolve(o.ao.Parallelism)

	var sw *store.Writer
	if o.storeDir != "" {
		if sw, err = store.NewWriter(o.storeDir); err != nil {
			return fail(err)
		}
		sw.SetSeed(manifest.Seed)
	}

	ectx, extractDone := obs.Stage(ctx, "extract")
	merged := &core.SyslogTraces{}
	ext := core.NewExtractor(mined.Network)
	tok := syslog.NewTokenizer()
	var shardTraces core.SyslogTraces
	var msgCount int64
	for _, sh := range cm.Shards {
		if err := ectx.Err(); err != nil {
			extractDone()
			return fail(err)
		}
		msgs, shardReports, err := readShardSyslog(capDir, sh.Name, tok, manifest.Start, lenient, sw)
		reports = append(reports, shardReports...)
		if err != nil {
			extractDone()
			return fail(err)
		}
		msgCount += int64(len(msgs))
		shardTraces = core.SyslogTraces{}
		ext.ExtractInto(ectx, msgs, mergeWindow, workers, &shardTraces)
		if err := ectx.Err(); err != nil {
			extractDone()
			return fail(err)
		}
		merged.Merge(&shardTraces)
	}
	obs.Add(ectx, "syslog.messages", msgCount)
	obs.Add(ectx, "syslog.nonlink", int64(merged.NonLink))
	obs.Add(ectx, "drops.syslog.unresolved", int64(merged.Unresolved))
	extractDone()

	sctx, listenDone := obs.Stage(ctx, "listen")
	l := listener.New(mined.Network)
	decodeFailures := 0
	lspRecords := 0
	for _, sh := range cm.Shards {
		n, fails, shardReports, err := replayShardLSPs(sctx, capDir, sh.Name, l, lenient)
		reports = append(reports, shardReports...)
		if err != nil {
			listenDone()
			return fail(err)
		}
		lspRecords += n
		decodeFailures += fails
	}
	res := l.Results()
	obs.Add(sctx, "listener.lsps", int64(res.LSPCount))
	obs.Add(sctx, "drops.listener.decode_errors", int64(res.DecodeErrors+decodeFailures))
	listenDone()
	if lenient && decodeFailures > 0 {
		reports = append(reports, CaptureSalvage{"capture LSP payloads", &salvage.Report{
			Kept:    lspRecords - decodeFailures,
			Skipped: decodeFailures,
			Reasons: map[string]int{"undecodable LSP payload": decodeFailures},
		}})
	}

	tix := tickets.NewIndex(corpus)
	analysis, err := core.Analyze(ctx, core.Input{
		Network:          mined.Network,
		Customers:        customers,
		Traces:           merged,
		ISTransitions:    res.ISTransitions,
		IPTransitions:    res.IPTransitions,
		Start:            manifest.Start,
		End:              manifest.End,
		ListenerOffline:  manifest.Offline(),
		Tickets:          tix,
		Window:           o.ao.Window,
		FlapGap:          o.ao.FlapGap,
		MergeWindow:      o.ao.MergeWindow,
		IncludeMultiLink: o.ao.IncludeMultiLink,
		Parallelism:      o.ao.Parallelism,
	})
	if err != nil {
		if ctx.Err() != nil {
			return fail(err)
		}
		return fail(fmt.Errorf("netfail: %w", err))
	}
	study := &Study{
		Campaign: &Campaign{
			Config: SimulationConfig{
				Seed:  manifest.Seed,
				Start: manifest.Start,
				End:   manifest.End,
			},
			Network:         mined.Network,
			Archive:         archive,
			ListenerOffline: manifest.Offline(),
			Counts:          manifest.Counts,
		},
		Mined:    mined,
		Listener: res,
		Tickets:  tix,
		Analysis: analysis,
	}
	if sw != nil {
		wctx, storeDone := obs.Stage(ctx, "store")
		if err := sw.WriteAnalysis(analysis, archive.FileCount(), manifest.Counts.LSPUpdates); err != nil {
			storeDone()
			return fail(err)
		}
		if err := sw.Finish(); err != nil {
			storeDone()
			return fail(fmt.Errorf("netfail: writing store: %w", err))
		}
		obs.Add(wctx, "store.messages", msgCount)
		storeDone()
	}
	return study, reports, nil
}

// readCampaignManifest loads the flat campaign manifest, leniently
// when asked.
func readCampaignManifest(dir string, lenient bool) (*netsim.Manifest, *salvage.Report, error) {
	f, err := os.Open(filepath.Join(dir, "manifest.json"))
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	if lenient {
		return netsim.ReadManifestLenient(f)
	}
	m, err := netsim.ReadManifest(f)
	return m, nil, err
}

// readCampaignSideFiles loads the ticket corpus and customer sites.
func readCampaignSideFiles(dir string) ([]tickets.Ticket, []*topo.Customer, error) {
	tf, err := os.Open(filepath.Join(dir, "tickets.json"))
	if err != nil {
		return nil, nil, err
	}
	corpus, err := tickets.ReadJSON(tf)
	tf.Close()
	if err != nil {
		return nil, nil, err
	}
	cf, err := os.Open(filepath.Join(dir, "customers.json"))
	if err != nil {
		return nil, nil, err
	}
	customers, err := topo.ReadCustomersJSON(cf)
	cf.Close()
	if err != nil {
		return nil, nil, err
	}
	return corpus, customers, nil
}

// readShardSyslog streams one shard's syslog segment back into parsed
// messages. Frame damage is governed by the segment reader's
// strict/lenient mode; unparseable (but CRC-intact) lines are skipped
// and accounted in both modes, mirroring the flat loader's tolerance
// for malformed syslog lines. With a store writer attached, every
// parsed line is copied into a fresh store message segment — one per
// shard, since timestamps restart at each shard boundary.
func readShardSyslog(capDir, shard string, tok *syslog.Tokenizer, ref time.Time, lenient bool, sw *store.Writer) ([]*syslog.Message, []CaptureSalvage, error) {
	path := filepath.Join(capDir, shard, capture.SyslogSegment)
	sr, err := openSegment(path, lenient)
	if err != nil {
		return nil, nil, err
	}
	defer sr.Close()
	if sw != nil {
		if err := sw.StartMessageSegment(); err != nil {
			return nil, nil, err
		}
	}
	var msgs []*syslog.Message
	parseSkips := 0
	for {
		tsMs, rec, nerr := sr.Next()
		if errors.Is(nerr, io.EOF) {
			break
		}
		if nerr != nil {
			return nil, nil, nerr
		}
		m := &syslog.Message{}
		if perr := tok.ParseBytes(rec, ref, m); perr != nil {
			parseSkips++
			continue
		}
		if sw != nil {
			if serr := sw.AppendMessage(tsMs, m.Hostname, rec); serr != nil {
				return nil, nil, serr
			}
		}
		msgs = append(msgs, m)
	}
	var reports []CaptureSalvage
	name := filepath.Join(CaptureDirName, shard, capture.SyslogSegment)
	if lenient {
		reports = append(reports, CaptureSalvage{name, sr.Report()})
	}
	if parseSkips > 0 {
		reports = append(reports, CaptureSalvage{name + " lines", &salvage.Report{
			Kept:    len(msgs),
			Skipped: parseSkips,
			Reasons: map[string]int{"unparseable syslog line": parseSkips},
		}})
	}
	return msgs, reports, nil
}

// replayShardLSPs streams one shard's LSP segment through the
// listener, checking cancellation every listenCancelStride records.
// Decode failures abort in strict mode and are counted in lenient.
func replayShardLSPs(ctx context.Context, capDir, shard string, l *listener.Listener, lenient bool) (records, decodeFailures int, reports []CaptureSalvage, err error) {
	path := filepath.Join(capDir, shard, capture.LSPSegment)
	sr, err := openSegment(path, lenient)
	if err != nil {
		return 0, 0, nil, err
	}
	defer sr.Close()
	for {
		if records%listenCancelStride == 0 {
			if cerr := ctx.Err(); cerr != nil {
				return records, decodeFailures, reports, cerr
			}
		}
		tsMs, rec, nerr := sr.Next()
		if errors.Is(nerr, io.EOF) {
			break
		}
		if nerr != nil {
			return records, decodeFailures, reports, nerr
		}
		records++
		if perr := l.Process(time.UnixMilli(tsMs).UTC(), rec); perr != nil {
			if !lenient {
				return records, decodeFailures, reports, fmt.Errorf(
					"netfail: replaying %s: record %d: %w", path, records-1, perr)
			}
			decodeFailures++
		}
	}
	if lenient {
		reports = append(reports, CaptureSalvage{
			filepath.Join(CaptureDirName, shard, capture.LSPSegment), sr.Report(),
		})
	}
	return records, decodeFailures, reports, nil
}

func openSegment(path string, lenient bool) (*capture.SegmentReader, error) {
	if lenient {
		return capture.OpenSegmentLenient(path)
	}
	return capture.OpenSegment(path)
}
