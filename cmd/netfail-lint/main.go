// Command netfail-lint runs the repository's static-analysis suite —
// the invariant checkers under internal/lint — over the named package
// patterns (default ./...), printing one line per finding and exiting
// non-zero if any invariant is violated:
//
//	go run ./cmd/netfail-lint ./...
//
// The suite (see docs/static-analysis.md):
//
//	detclock    no wall clock / global math/rand outside internal/clock
//	droppederr  no silently discarded parse/decode errors
//	lockguard   "// guarded by mu" fields accessed only under the mutex
//	durmul      no duration×duration, no unit-less duration constants
//	ctxfirst    context.Context first in signatures, never in structs
//	hotalloc    no allocation-inducing constructs in //netfail:hotpath bodies
//	goleak      goroutines must have exit paths and cancellation-guarded sends
//
// In addition to the analyzers, the escape-analysis baseline gate
// compares the compiler's heap-escape diagnostics (-gcflags=-m=1)
// inside hotpath functions against lint-escape-baseline.txt: a new
// escape, a stale entry, or an unbaselined hotpath function is a
// finding like any other. -write-escape-baseline regenerates the file
// after intentional changes (wired as `make lint-baseline`).
//
// -json emits findings as one JSON object per line
// ({"file","line","col","analyzer","message"}) for editor and CI
// integration; the default text form matches the GitHub problem
// matcher committed under .github/.
//
// netfail-lint is self-contained: it loads and type-checks packages
// via `go list -export` export data, so it needs no network access
// and no dependencies beyond the Go toolchain.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"go/token"
	"os"
	"os/exec"
	"path/filepath"
	"strings"

	"netfail/internal/lint"
	"netfail/internal/lint/ctxfirst"
	"netfail/internal/lint/detclock"
	"netfail/internal/lint/droppederr"
	"netfail/internal/lint/durmul"
	"netfail/internal/lint/escape"
	"netfail/internal/lint/goleak"
	"netfail/internal/lint/hotalloc"
	"netfail/internal/lint/lockguard"
)

// Suite is the full analyzer set, in the order findings are
// attributed.
var suite = []*lint.Analyzer{
	detclock.Analyzer,
	droppederr.Analyzer,
	lockguard.Analyzer,
	durmul.Analyzer,
	ctxfirst.Analyzer,
	hotalloc.Analyzer,
	goleak.Analyzer,
}

func main() {
	jsonOut := flag.Bool("json", false, "emit findings as one JSON object per line")
	baselinePath := flag.String("escape-baseline", "lint-escape-baseline.txt",
		"escape-analysis baseline file, relative to the module root; empty disables the gate")
	writeBaseline := flag.Bool("write-escape-baseline", false,
		"regenerate the escape baseline from the current build and exit")
	flag.Parse()

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	if *writeBaseline {
		if err := rewriteBaseline(*baselinePath); err != nil {
			fatal(err)
		}
		return
	}

	pkgs, err := lint.Load(".", patterns...)
	if err != nil {
		fatal(err)
	}
	findings, err := lint.Run(pkgs, suite)
	if err != nil {
		fatal(err)
	}
	if *baselinePath != "" {
		gate, err := escapeGate(*baselinePath)
		if err != nil {
			fatal(err)
		}
		findings = append(findings, gate...)
	}
	for _, f := range findings {
		if *jsonOut {
			printJSON(f)
		} else {
			fmt.Println(f)
		}
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "netfail-lint: %d finding(s) in %d package(s)\n", len(findings), len(pkgs))
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "netfail-lint:", err)
	os.Exit(2)
}

// jsonFinding is the -json wire form, one object per line.
type jsonFinding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func printJSON(f lint.Finding) {
	out, err := json.Marshal(jsonFinding{
		File:     f.Pos.Filename,
		Line:     f.Pos.Line,
		Col:      f.Pos.Column,
		Analyzer: f.Analyzer,
		Message:  f.Message,
	})
	if err != nil {
		fatal(err)
	}
	fmt.Println(string(out))
}

// moduleRoot locates the enclosing module for the escape gate, which
// always evaluates the whole module regardless of the patterns given.
func moduleRoot() (string, error) {
	cmd := exec.Command("go", "env", "GOMOD")
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return "", fmt.Errorf("go env GOMOD: %v\n%s", err, stderr.String())
	}
	gomod := strings.TrimSpace(string(out))
	if gomod == "" || gomod == os.DevNull {
		return "", fmt.Errorf("escape gate requires running inside a module")
	}
	return filepath.Dir(gomod), nil
}

// rewriteBaseline regenerates the baseline file from the current
// build: the `make lint-baseline` entry point.
func rewriteBaseline(path string) error {
	root, err := moduleRoot()
	if err != nil {
		return err
	}
	entries, err := escape.Collect(root)
	if err != nil {
		return err
	}
	full := filepath.Join(root, path)
	if err := os.WriteFile(full, escape.Format(entries), 0o644); err != nil {
		return err
	}
	fmt.Printf("netfail-lint: wrote %d escape baseline entr%s to %s\n",
		len(entries), plural(len(entries), "y", "ies"), path)
	return nil
}

func plural(n int, one, many string) string {
	if n == 1 {
		return one
	}
	return many
}

// escapeGate diffs the current escape diagnostics against the
// committed baseline and renders every divergence as a finding: new
// escapes at the function declaration, stale entries at their
// baseline line.
func escapeGate(path string) ([]lint.Finding, error) {
	root, err := moduleRoot()
	if err != nil {
		return nil, err
	}
	current, err := escape.Collect(root)
	if err != nil {
		return nil, err
	}
	full := filepath.Join(root, path)
	data, err := os.ReadFile(full)
	if os.IsNotExist(err) {
		if len(current) == 0 {
			return nil, nil // no annotations, no baseline: nothing to gate
		}
		return []lint.Finding{{
			Analyzer: "escape",
			Pos:      token.Position{Filename: path, Line: 1},
			Message: fmt.Sprintf("%d hotpath function(s) have no escape baseline; run `make lint-baseline` and commit %s",
				hotpathCount(current), path),
		}}, nil
	} else if err != nil {
		return nil, err
	}
	baseline, err := escape.ParseBaseline(data)
	if err != nil {
		return nil, err
	}
	added, stale := escape.Diff(current, baseline)
	if len(added) == 0 && len(stale) == 0 {
		return nil, nil
	}
	decls, err := escape.FuncDecls(root)
	if err != nil {
		return nil, err
	}
	var findings []lint.Finding
	for _, e := range added {
		pos, ok := decls[e.Func]
		if !ok {
			pos = token.Position{Filename: path, Line: 1}
		}
		msg := fmt.Sprintf("new heap escape in hotpath function %s: %q is not in %s; eliminate the escape or refresh with `make lint-baseline`",
			e.Func, e.Diag, path)
		if e.Diag == escape.None {
			msg = fmt.Sprintf("hotpath function %s is now escape-free but %s does not record it; refresh with `make lint-baseline`",
				e.Func, path)
		}
		findings = append(findings, lint.Finding{
			Analyzer: "escape",
			Pkg:      pkgOf(e.Func),
			Pos:      pos,
			Message:  msg,
		})
	}
	for _, b := range stale {
		findings = append(findings, lint.Finding{
			Analyzer: "escape",
			Pkg:      pkgOf(b.Func),
			Pos:      token.Position{Filename: path, Line: b.Line},
			Message: fmt.Sprintf("stale escape baseline entry %q: the compiler no longer reports it; refresh with `make lint-baseline`",
				b.Entry),
		})
	}
	return findings, nil
}

// pkgOf trims the function name off a qualified baseline entry:
// "netfail/internal/match.(*TransitionIndex).AnyWithin" has import
// path "netfail/internal/match".
func pkgOf(fn string) string {
	slash := strings.LastIndex(fn, "/")
	dot := strings.Index(fn[slash+1:], ".")
	if dot < 0 {
		return fn
	}
	return fn[:slash+1+dot]
}

func hotpathCount(entries []escape.Entry) int {
	seen := map[string]bool{}
	for _, e := range entries {
		seen[e.Func] = true
	}
	return len(seen)
}
