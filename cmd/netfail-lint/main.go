// Command netfail-lint runs the repository's static-analysis suite —
// the five invariant checkers under internal/lint — over the named
// package patterns (default ./...), printing one line per finding and
// exiting non-zero if any invariant is violated:
//
//	go run ./cmd/netfail-lint ./...
//
// The suite (see docs/static-analysis.md):
//
//	detclock    no wall clock / global math/rand outside internal/clock
//	droppederr  no silently discarded parse/decode errors
//	lockguard   "// guarded by mu" fields accessed only under the mutex
//	durmul      no duration×duration, no unit-less duration constants
//	ctxfirst    context.Context first in signatures, never in structs
//
// netfail-lint is self-contained: it loads and type-checks packages
// via `go list -export` export data, so it needs no network access
// and no dependencies beyond the Go toolchain.
package main

import (
	"fmt"
	"os"

	"netfail/internal/lint"
	"netfail/internal/lint/ctxfirst"
	"netfail/internal/lint/detclock"
	"netfail/internal/lint/droppederr"
	"netfail/internal/lint/durmul"
	"netfail/internal/lint/lockguard"
)

// Suite is the full analyzer set, in the order findings are
// attributed.
var suite = []*lint.Analyzer{
	detclock.Analyzer,
	droppederr.Analyzer,
	lockguard.Analyzer,
	durmul.Analyzer,
	ctxfirst.Analyzer,
}

func main() {
	patterns := os.Args[1:]
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := lint.Load(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "netfail-lint:", err)
		os.Exit(2)
	}
	findings, err := lint.Run(pkgs, suite)
	if err != nil {
		fmt.Fprintln(os.Stderr, "netfail-lint:", err)
		os.Exit(2)
	}
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "netfail-lint: %d finding(s) in %d package(s)\n", len(findings), len(pkgs))
		os.Exit(1)
	}
}
