package main

import (
	"encoding/json"
	"io"
)

// jsonEncoder builds the CLI's indented JSON encoder — the same
// rendering the HTTP surface uses, so -json output and curl output
// diff cleanly.
func jsonEncoder(w io.Writer) *json.Encoder {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc
}
