// Command netfail-query answers questions against an indexed failure
// store (written by netfail-analyze -store, netfail.WithStoreDir, or
// AnalyzeCaptureDir) without re-running the analysis pipeline: window
// and link lookups ride the store's sparse time indexes and posting
// lists instead of a full replay.
//
// Usage:
//
//	netfail-query -store ./store links
//	netfail-query -store ./store failures -link "a:0|b:0" -source isis
//	netfail-query -store ./store transitions -stream syslog-adj -dir down \
//	    -from 2010-10-02T00:00:00Z -to 2010-10-03T00:00:00Z
//	netfail-query -store ./store messages -host cpe-017 -contains UPDOWN
//	netfail-query -store ./store flaps -source syslog
//	netfail-query -store ./store table -n 4
//	netfail-query -store ./store info
//	netfail-query -store ./store serve -debug-addr 127.0.0.1:8080
//
// Every verb accepts -json for machine-readable output (the same wire
// shapes the /api/v1 HTTP surface serves); serve mounts that surface
// over HTTP. -lenient opens the store in salvage mode, printing what
// was skipped to stderr and exiting 3 if anything was — the same
// convention as netfail-analyze.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"time"

	"netfail/internal/api"
	"netfail/internal/config"
	"netfail/internal/report"
	"netfail/internal/store"
	"netfail/internal/topo"
	"netfail/internal/trace"
)

func main() {
	var (
		storeDir = flag.String("store", "store", "store directory written by netfail-analyze -store")
		jsonOut  = config.JSONFlag(flag.CommandLine)
		strict   = config.StrictnessFlags(flag.CommandLine, false)
	)
	flag.Usage = usage
	flag.Parse()
	if flag.NArg() == 0 {
		usage()
		os.Exit(2)
	}

	lenient, err := strict.Lenient()
	if err != nil {
		fmt.Fprintln(os.Stderr, "netfail-query:", err)
		os.Exit(2)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	if err := run(ctx, *storeDir, lenient, *jsonOut, flag.Args()); err != nil {
		fmt.Fprintln(os.Stderr, "netfail-query:", err)
		if errors.Is(err, context.Canceled) {
			os.Exit(130)
		}
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage: netfail-query [flags] <verb> [verb flags]

verbs:
  links        list the link catalog
  failures     query stored failures      (-link -source -from -to -limit)
  transitions  query stored transitions   (-link -stream -dir -kind -reporter -from -to -limit)
  messages     query stored syslog lines  (-host -contains -from -to -limit)
  flaps        group failures into flap episodes (-source -link -from -to)
  table        print a precomputed agreement table (-n 1..7)
  info         print the store's campaign metadata and record counts
  serve        serve the /api/v1 HTTP query surface (-debug-addr)

flags:
`)
	flag.PrintDefaults()
}

func run(ctx context.Context, dir string, lenient, jsonOut bool, args []string) error {
	if !store.IsStoreDir(dir) {
		return fmt.Errorf("%s is not a store directory (no %s); write one with netfail-analyze -store", dir, store.ManifestName)
	}
	var s *store.Store
	var err error
	if lenient {
		s, err = store.OpenLenient(dir)
	} else {
		s, err = store.Open(dir)
	}
	if err != nil {
		return err
	}

	verb, rest := args[0], args[1:]
	switch verb {
	case "links":
		err = runLinks(ctx, s, jsonOut, rest)
	case "failures":
		err = runFailures(ctx, s, jsonOut, rest)
	case "transitions":
		err = runTransitions(ctx, s, jsonOut, rest)
	case "messages":
		err = runMessages(ctx, s, jsonOut, rest)
	case "flaps":
		err = runFlaps(ctx, s, jsonOut, rest)
	case "table":
		err = runTable(s, jsonOut, rest)
	case "info":
		err = runInfo(s, jsonOut, rest)
	case "serve":
		err = runServe(ctx, s, rest)
	default:
		return fmt.Errorf("unknown verb %q (want links, failures, transitions, messages, flaps, table, info, or serve)", verb)
	}
	if err != nil {
		return err
	}
	return reportSalvage(s)
}

// reportSalvage prints the lenient accounting and exits 3 when any
// record was skipped, mirroring netfail-analyze's salvage convention.
func reportSalvage(s *store.Store) error {
	if !s.Lenient() {
		return nil
	}
	salvaged := false
	for _, cs := range s.Salvage() {
		fmt.Fprintf(os.Stderr, "netfail-query: salvage %s: %s\n", cs.Name, cs.Report)
		if !cs.Report.Clean() {
			salvaged = true
		}
	}
	if salvaged {
		os.Exit(3)
	}
	return nil
}

// windowFlags registers the shared -from/-to pair on a verb flag set
// and returns a resolver producing the store option.
func windowFlags(fs *flag.FlagSet) func() ([]store.Option, error) {
	from := fs.String("from", "", "window start (RFC 3339)")
	to := fs.String("to", "", "window end (RFC 3339)")
	return func() ([]store.Option, error) {
		if *from == "" && *to == "" {
			return nil, nil
		}
		if *from == "" || *to == "" {
			return nil, errors.New("-from and -to must be given together")
		}
		ft, err := time.Parse(time.RFC3339, *from)
		if err != nil {
			return nil, fmt.Errorf("-from: %w", err)
		}
		tt, err := time.Parse(time.RFC3339, *to)
		if err != nil {
			return nil, fmt.Errorf("-to: %w", err)
		}
		if !ft.Before(tt) {
			return nil, fmt.Errorf("-to %s is not after -from %s", *to, *from)
		}
		return []store.Option{store.WithWindow(ft, tt)}, nil
	}
}

func verbFlags(verb string) *flag.FlagSet {
	fs := flag.NewFlagSet("netfail-query "+verb, flag.ContinueOnError)
	fs.SetOutput(os.Stderr)
	return fs
}

func runLinks(ctx context.Context, s *store.Store, jsonOut bool, args []string) error {
	fs := verbFlags("links")
	if err := fs.Parse(args); err != nil {
		return err
	}
	links, err := s.Links(ctx)
	if err != nil {
		return err
	}
	if jsonOut {
		out := make([]map[string]string, len(links))
		for i, l := range links {
			out[i] = map[string]string{"id": string(l.ID), "class": l.Class.String()}
		}
		return printJSON(map[string]any{"links": out, "count": len(out)})
	}
	for _, l := range links {
		fmt.Printf("%-8s %s\n", l.Class, l.ID)
	}
	fmt.Printf("%d links\n", len(links))
	return nil
}

func runFailures(ctx context.Context, s *store.Store, jsonOut bool, args []string) error {
	fs := verbFlags("failures")
	link := fs.String("link", "", "restrict to one link ID")
	source := fs.String("source", "", "restrict to one reconstruction: syslog or isis")
	limit := fs.Int("limit", 0, "cap the result count (0 = unlimited)")
	window := windowFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	opts, err := window()
	if err != nil {
		return err
	}
	if *link != "" {
		opts = append(opts, store.WithLink(topo.LinkID(*link)))
	}
	if *source != "" {
		src, err := store.ParseSource(*source)
		if err != nil {
			return err
		}
		opts = append(opts, store.WithSource(src))
	}
	if *limit > 0 {
		opts = append(opts, store.WithLimit(*limit))
	}
	recs, err := s.Failures(ctx, opts...)
	if err != nil {
		return err
	}
	if jsonOut {
		out := make([]any, len(recs))
		for i, r := range recs {
			out[i] = api.FailureJSON(r)
		}
		return printJSON(map[string]any{"failures": out, "count": len(out)})
	}
	for _, r := range recs {
		fmt.Printf("%-7s %s  %s  (%s)  %s\n", r.Source,
			r.Start.Format(time.RFC3339), r.End.Format(time.RFC3339),
			r.End.Sub(r.Start), r.Link)
	}
	fmt.Printf("%d failures\n", len(recs))
	return nil
}

func runTransitions(ctx context.Context, s *store.Store, jsonOut bool, args []string) error {
	fs := verbFlags("transitions")
	link := fs.String("link", "", "restrict to one link ID")
	stream := fs.String("stream", "", "restrict to one stream: syslog-adj, syslog-per-router, syslog-physical, is-reach, or ip-reach")
	dir := fs.String("dir", "", "restrict to one direction: down or up")
	kind := fs.String("kind", "", "restrict to one observation kind (e.g. isis-adj, physical)")
	reporter := fs.String("reporter", "", "restrict to one reporting router")
	limit := fs.Int("limit", 0, "cap the result count (0 = unlimited)")
	window := windowFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	opts, err := window()
	if err != nil {
		return err
	}
	if *link != "" {
		opts = append(opts, store.WithLink(topo.LinkID(*link)))
	}
	if *stream != "" {
		st, err := store.ParseStream(*stream)
		if err != nil {
			return err
		}
		opts = append(opts, store.WithStream(st))
	}
	switch *dir {
	case "":
	case "down":
		opts = append(opts, store.WithDirection(trace.Down))
	case "up":
		opts = append(opts, store.WithDirection(trace.Up))
	default:
		return fmt.Errorf("-dir: want \"down\" or \"up\", got %q", *dir)
	}
	if *kind != "" {
		k, err := trace.ParseKind(*kind)
		if err != nil {
			return err
		}
		opts = append(opts, store.WithKind(k))
	}
	if *reporter != "" {
		opts = append(opts, store.WithReporter(*reporter))
	}
	if *limit > 0 {
		opts = append(opts, store.WithLimit(*limit))
	}
	recs, err := s.Transitions(ctx, opts...)
	if err != nil {
		return err
	}
	if jsonOut {
		out := make([]any, len(recs))
		for i, r := range recs {
			out[i] = api.TransitionJSON(r)
		}
		return printJSON(map[string]any{"transitions": out, "count": len(out)})
	}
	for _, r := range recs {
		fmt.Printf("%s  %-17s %-4s %-10s %-12s %s\n", r.Time.Format(time.RFC3339),
			r.Stream, r.Dir, r.Kind, r.Reporter, r.Link)
	}
	fmt.Printf("%d transitions\n", len(recs))
	return nil
}

func runMessages(ctx context.Context, s *store.Store, jsonOut bool, args []string) error {
	fs := verbFlags("messages")
	host := fs.String("host", "", "restrict to one emitting host")
	contains := fs.String("contains", "", "restrict to lines containing this substring")
	limit := fs.Int("limit", 0, "cap the result count (0 = unlimited)")
	window := windowFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	opts, err := window()
	if err != nil {
		return err
	}
	if *host != "" {
		opts = append(opts, store.WithHost(*host))
	}
	if *contains != "" {
		opts = append(opts, store.WithContains(*contains))
	}
	if *limit > 0 {
		opts = append(opts, store.WithLimit(*limit))
	}
	recs, err := s.Messages(ctx, opts...)
	if err != nil {
		return err
	}
	if jsonOut {
		out := make([]any, len(recs))
		for i, r := range recs {
			out[i] = api.MessageJSON(r)
		}
		return printJSON(map[string]any{"messages": out, "count": len(out)})
	}
	for _, r := range recs {
		fmt.Println(r.Line)
	}
	fmt.Fprintf(os.Stderr, "%d messages\n", len(recs))
	return nil
}

func runFlaps(ctx context.Context, s *store.Store, jsonOut bool, args []string) error {
	fs := verbFlags("flaps")
	source := fs.String("source", "syslog", "reconstruction to group: syslog or isis")
	link := fs.String("link", "", "restrict to one link ID")
	window := windowFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	src, err := store.ParseSource(*source)
	if err != nil {
		return err
	}
	opts, err := window()
	if err != nil {
		return err
	}
	if *link != "" {
		opts = append(opts, store.WithLink(topo.LinkID(*link)))
	}
	eps, err := s.Flaps(ctx, src, opts...)
	if err != nil {
		return err
	}
	if jsonOut {
		out := make([]any, len(eps))
		for i, e := range eps {
			out[i] = api.EpisodeJSON(src, e)
		}
		return printJSON(map[string]any{"episodes": out, "count": len(out)})
	}
	flaps := 0
	for _, e := range eps {
		tag := " "
		if e.IsFlap() {
			tag = "*"
			flaps++
		}
		fmt.Printf("%s %s  %s  %3d failures  %s\n", tag,
			e.Start().Format(time.RFC3339), e.End().Format(time.RFC3339),
			len(e.Failures), e.Link)
	}
	fmt.Printf("%d episodes (%d flapping)\n", len(eps), flaps)
	return nil
}

func runTable(s *store.Store, jsonOut bool, args []string) error {
	fs := verbFlags("table")
	n := fs.Int("n", 0, "table number (1-7)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	table, err := s.Table(*n)
	if err != nil {
		return err
	}
	if jsonOut {
		return printJSON(map[string]any{"table": *n, "data": table})
	}
	t := s.Tables()
	switch *n {
	case 1:
		return report.RenderTable1(os.Stdout, t.Table1)
	case 2:
		return report.RenderTable2(os.Stdout, t.Table2)
	case 3:
		return report.RenderTable3(os.Stdout, t.Table3)
	case 4:
		return report.RenderTable4(os.Stdout, t.Table4)
	case 5:
		return report.RenderTable5(os.Stdout, t.Table5)
	case 6:
		return report.RenderTable6(os.Stdout, t.Table6)
	case 7:
		return report.RenderTable7(os.Stdout, t.Table7)
	}
	return fmt.Errorf("no table %d", *n)
}

func runInfo(s *store.Store, jsonOut bool, args []string) error {
	fs := verbFlags("info")
	if err := fs.Parse(args); err != nil {
		return err
	}
	man := s.Manifest()
	var msgs int64
	for _, m := range man.Messages {
		msgs += m.Records
	}
	if jsonOut {
		return printJSON(man)
	}
	fmt.Printf("store:        %s (%s)\n", s.Dir(), man.Format)
	fmt.Printf("campaign:     seed %d, %s - %s\n", man.Seed,
		man.Start.Format(time.RFC3339), man.End.Format(time.RFC3339))
	fmt.Printf("catalogs:     %d links, %d reporters, %d hosts\n",
		len(man.Links), len(man.Reporters), len(man.Hosts))
	fmt.Printf("records:      %d failures, %d transitions, %d messages in %d segments\n",
		man.Failures.Records, man.Transitions.Records, msgs, len(man.Messages))
	fmt.Printf("params:       window %s, flap gap %s, merge window %s, multilink %v\n",
		man.Params.Window, man.Params.FlapGap, man.Params.MergeWindow,
		man.Params.IncludeMultiLink)
	return nil
}

func runServe(ctx context.Context, s *store.Store, args []string) error {
	fs := verbFlags("serve")
	addr := config.DebugAddrFlag(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *addr == "" {
		return errors.New("serve: -debug-addr is required")
	}
	srv := &http.Server{Addr: *addr, Handler: api.NewMux(api.Options{Store: s})}
	errCh := make(chan error, 1)
	go func() {
		select {
		case errCh <- srv.ListenAndServe():
		case <-ctx.Done():
		}
	}()
	fmt.Printf("serving /api/v1 on http://%s\n", *addr)
	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
		shctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		return srv.Shutdown(shctx)
	}
}

func printJSON(v any) error {
	enc := jsonEncoder(os.Stdout)
	return enc.Encode(v)
}
