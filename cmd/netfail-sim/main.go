// Command netfail-sim runs a simulated measurement campaign over a
// CENIC-scale network and writes the raw captures an analyst would
// have collected: the syslog message log, the IS-IS listener's LSP
// capture, the router configuration archive, the trouble-ticket
// corpus, and a campaign manifest.
//
// Usage:
//
//	netfail-sim -seed 1 -out ./campaign [-days 387] [-core 60 -cpe 175]
//	netfail-sim -seed 1 -out ./campaign -spill [-shards 9]
//
// The defaults reproduce the scale of the paper's 13-month study.
// netfail-analyze consumes the output directory.
//
// With -spill the event streams go to a sharded on-disk capture
// (out/capture) instead of flat syslog.log/lsps.log files, keeping
// peak memory bounded by one shard's working set; -shards N adds N
// spine/leaf pod domains beside the backbone for data-center-scale
// campaigns, each captured to its own shard.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"time"

	"netfail"
	"netfail/internal/config"
	"netfail/internal/netsim"
	"netfail/internal/syslog"
	"netfail/internal/tickets"
	"netfail/internal/topo"
	"netfail/internal/trace"
)

func main() {
	var (
		seed     = flag.Int64("seed", 1, "simulation seed (campaigns are deterministic in it)")
		out      = flag.String("out", "campaign", "output directory")
		days     = flag.Int("days", 0, "campaign length in days (0 = the paper's Oct 2010 - Nov 2011 window)")
		core     = flag.Int("core", 0, "core router count (0 = CENIC default 60)")
		cpe      = flag.Int("cpe", 0, "CPE router count (0 = CENIC default 175)")
		refresh  = flag.Bool("full-refresh", false, "materialize every periodic LSP refresh (large output)")
		linkIDs  = flag.Bool("linkids", false, "advertise RFC 5307 link identifiers (footnote-1 extension)")
		inband   = flag.Bool("inband", false, "lose syslog from routers partitioned away from the collector")
		truth    = flag.Bool("truth", false, "also export ground-truth failures (truth.log)")
		dot      = flag.Bool("dot", false, "also export the topology as Graphviz (topology.dot)")
		progress = config.ProgressFlag(flag.CommandLine)
		spill    = flag.Bool("spill", false, "stream captures to a sharded on-disk capture (out/capture) instead of flat log files")
		shards   = flag.Int("shards", 0, "with -spill: add this many spine/leaf pod domains beside the backbone, one capture shard each")
		par      = config.ParallelismFlag(flag.CommandLine)
	)
	flag.Parse()

	cfg := netsim.Config{Seed: *seed}
	if *days > 0 {
		cfg.Start = netsim.StudyStart
		cfg.End = netsim.StudyStart.Add(time.Duration(*days) * 24 * time.Hour)
	}
	if *core > 0 || *cpe > 0 {
		spec := topo.DefaultSpec()
		spec.Seed = *seed
		if *core > 0 {
			spec.CoreRouters = *core
			spec.CoreChords = max(1, spec.CoreChords**core/60)
			spec.MultiLinkCorePairs = max(0, spec.MultiLinkCorePairs**core/60)
		}
		if *cpe > 0 {
			spec.CPERouters = *cpe
			spec.Customers = max(1, spec.Customers**cpe/175)
			spec.DualHomedCPE = max(1, spec.DualHomedCPE**cpe/175)
			spec.MultiLinkCPEPairs = max(0, spec.MultiLinkCPEPairs**cpe/175)
		}
		cfg.Spec = spec
	}
	if *refresh {
		cfg.RefreshMode = netsim.RefreshFull
	}
	cfg.EnableLinkIDs = *linkIDs
	cfg.InBandSyslog = *inband

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	var opts []netfail.Option
	if *progress {
		opts = append(opts, netfail.WithProgress(func(ev netfail.ProgressEvent) {
			fmt.Fprintf(os.Stderr, "progress: %s\n", ev)
		}))
	}

	if *shards > 0 && !*spill {
		fmt.Fprintln(os.Stderr, "netfail-sim: -shards requires -spill")
		os.Exit(2)
	}

	var err error
	if *spill {
		opts = append(opts, netfail.WithParallelism(*par))
		err = runSpill(ctx, cfg, *out, *shards, opts)
	} else {
		err = run(ctx, cfg, *out, *truth, *dot, opts)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "netfail-sim:", err)
		if errors.Is(err, context.Canceled) {
			os.Exit(130)
		}
		os.Exit(1)
	}
}

// runSpill streams the campaign to a sharded capture directory: the
// event logs live in out/capture as CRC-framed shard segments, the
// remaining artifacts (manifest, configs, tickets, customers) in out
// as usual. netfail-analyze detects the capture directory and streams
// it back shard by shard.
func runSpill(ctx context.Context, cfg netsim.Config, out string, shards int, opts []netfail.Option) error {
	if err := os.MkdirAll(out, 0o755); err != nil {
		return err
	}
	var fabric netfail.FabricSpec
	if shards > 0 {
		fabric = netfail.DefaultFabricSpec(shards)
	}
	camp, err := netfail.SimulateToCapture(ctx, cfg, fabric, out, opts...)
	if err != nil {
		return err
	}
	fmt.Printf("spilled campaign written to %s (capture in %s)\n", out, filepath.Join(out, netfail.CaptureDirName))
	fmt.Printf("  period:            %s - %s\n",
		camp.Config.Start.Format("2006-01-02"), camp.Config.End.Format("2006-01-02"))
	coreN, cpeN := camp.Network.CountRouters()
	coreL, cpeL := camp.Network.CountLinks()
	fmt.Printf("  shards:            %d\n", 1+shards)
	fmt.Printf("  routers:           %d core, %d cpe\n", coreN, cpeN)
	fmt.Printf("  links:             %d core, %d cpe\n", coreL, cpeL)
	fmt.Printf("  config files:      %d\n", camp.Archive.FileCount())
	fmt.Printf("  ground truth:      %d failures\n", camp.Counts.GroundTruthFailures)
	fmt.Printf("  syslog received:   %d of %d sent\n", camp.Counts.SyslogReceived, camp.Counts.SyslogSent)
	fmt.Printf("  IS-IS updates:     %d (%d content-bearing)\n", camp.Counts.LSPUpdates, camp.Counts.ContentLSPs)
	return nil
}

func run(ctx context.Context, cfg netsim.Config, out string, exportTruth, exportDOT bool, opts []netfail.Option) error {
	camp, err := netfail.Simulate(ctx, cfg, opts...)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(out, 0o755); err != nil {
		return err
	}

	writeFile := func(name string, fn func(*os.File) error) error {
		f, err := os.Create(filepath.Join(out, name))
		if err != nil {
			return err
		}
		if err := fn(f); err != nil {
			f.Close()
			return fmt.Errorf("writing %s: %w", name, err)
		}
		return f.Close()
	}

	if err := writeFile("syslog.log", func(f *os.File) error {
		return syslog.WriteLog(f, camp.Syslog)
	}); err != nil {
		return err
	}
	if err := writeFile("lsps.log", func(f *os.File) error {
		return netsim.WriteLSPLog(f, camp.LSPLog)
	}); err != nil {
		return err
	}
	if err := writeFile("manifest.json", func(f *os.File) error {
		return camp.WriteManifest(f)
	}); err != nil {
		return err
	}
	corpus := tickets.Generate(cfg.Seed+1, camp.GroundTruthFailures(), tickets.DefaultParams())
	if err := writeFile("tickets.json", func(f *os.File) error {
		return tickets.WriteJSON(f, corpus)
	}); err != nil {
		return err
	}
	if err := writeFile("customers.json", func(f *os.File) error {
		return topo.WriteCustomersJSON(f, camp.Network.Customers)
	}); err != nil {
		return err
	}
	if err := camp.Archive.SaveDir(filepath.Join(out, "configs")); err != nil {
		return err
	}
	if exportTruth {
		if err := writeFile("truth.log", func(f *os.File) error {
			var ts []trace.Transition
			for _, g := range camp.GroundTruth {
				ts = append(ts,
					trace.Transition{Time: g.Start, Link: g.Link, Dir: trace.Down, Kind: trace.KindISReach, Reporter: "truth"},
					trace.Transition{Time: g.End, Link: g.Link, Dir: trace.Up, Kind: trace.KindISReach, Reporter: "truth"})
			}
			trace.SortTransitions(ts)
			return trace.WriteTransitions(f, ts)
		}); err != nil {
			return err
		}
	}

	if exportDOT {
		if err := writeFile("topology.dot", func(f *os.File) error {
			return topo.WriteDOT(f, camp.Network)
		}); err != nil {
			return err
		}
	}

	fmt.Printf("campaign written to %s\n", out)
	fmt.Printf("  period:            %s - %s\n",
		camp.Config.Start.Format("2006-01-02"), camp.Config.End.Format("2006-01-02"))
	coreN, cpeN := camp.Network.CountRouters()
	coreL, cpeL := camp.Network.CountLinks()
	fmt.Printf("  routers:           %d core, %d cpe\n", coreN, cpeN)
	fmt.Printf("  links:             %d core, %d cpe\n", coreL, cpeL)
	fmt.Printf("  config files:      %d\n", camp.Archive.FileCount())
	fmt.Printf("  ground truth:      %d failures\n", camp.Counts.GroundTruthFailures)
	fmt.Printf("  syslog received:   %d of %d sent\n", camp.Counts.SyslogReceived, camp.Counts.SyslogSent)
	fmt.Printf("  IS-IS updates:     %d (%d content-bearing)\n", camp.Counts.LSPUpdates, camp.Counts.ContentLSPs)
	fmt.Printf("  tickets:           %d\n", len(corpus))
	return nil
}
