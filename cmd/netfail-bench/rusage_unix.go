//go:build unix

package main

import (
	"runtime"
	"syscall"
)

// peakRSSKB returns the process's high-water resident set in KiB
// (ru_maxrss), or 0 when unavailable. Linux reports KiB natively;
// Darwin reports bytes.
func peakRSSKB() int64 {
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		return 0
	}
	kb := int64(ru.Maxrss)
	if runtime.GOOS == "darwin" {
		kb /= 1024
	}
	return kb
}
