// Command netfail-bench turns `go test -bench` output into the
// BENCH_<n>.json trajectory artifact. It reads benchmark output on
// stdin and writes one JSON document recording ns/op, B/op, and
// allocs/op for every benchmark, stamped with the PR number and the
// Go environment that produced it:
//
//	go test -run '^$' -bench . -benchmem ./... | netfail-bench -pr 4 -o BENCH_4.json
//
// scripts/bench.sh (and `make bench`) is the canonical driver; CI
// uploads the resulting file as a build artifact so the benchmark
// trajectory across the PR stack stays diffable.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	"netfail/internal/benchfmt"
)

func main() {
	pr := flag.Int("pr", 0, "PR sequence number recorded in the report")
	out := flag.String("o", "", "output file (default stdout)")
	var pairSpecs []string
	flag.Func("pair", "record a base=variant overhead ratio (repeatable), e.g. -pair BenchmarkAnalyzeMonth=BenchmarkAnalyzeMonthTraced", func(s string) error {
		if !strings.Contains(s, "=") {
			return fmt.Errorf("want base=variant, got %q", s)
		}
		pairSpecs = append(pairSpecs, s)
		return nil
	})
	flag.Parse()

	entries, goos, goarch, procs, err := benchfmt.Parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "netfail-bench:", err)
		os.Exit(1)
	}
	if len(entries) == 0 {
		fmt.Fprintln(os.Stderr, "netfail-bench: no benchmark results on stdin")
		os.Exit(1)
	}
	if goos == "" {
		goos = runtime.GOOS
	}
	if goarch == "" {
		goarch = runtime.GOARCH
	}
	if procs == 0 {
		procs = runtime.GOMAXPROCS(0)
	}
	rep := benchfmt.Report{
		PR:         *pr,
		GoVersion:  runtime.Version(),
		GoOS:       goos,
		GoArch:     goarch,
		GoMaxProcs: procs,
		Benchmarks: entries,
	}
	for _, spec := range pairSpecs {
		base, variant, _ := strings.Cut(spec, "=")
		p, err := benchfmt.MakePair(entries, base, variant)
		if err != nil {
			fmt.Fprintln(os.Stderr, "netfail-bench:", err)
			os.Exit(1)
		}
		rep.Pairs = append(rep.Pairs, p)
		fmt.Fprintf(os.Stderr, "netfail-bench: pair %s vs %s: ratio %.4f\n", variant, base, p.NsRatio)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "netfail-bench:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := benchfmt.Write(w, rep); err != nil {
		fmt.Fprintln(os.Stderr, "netfail-bench:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "netfail-bench: %d benchmarks", len(entries))
	if *out != "" {
		fmt.Fprintf(os.Stderr, " -> %s", *out)
	}
	fmt.Fprintln(os.Stderr)
}
