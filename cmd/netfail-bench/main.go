// Command netfail-bench turns `go test -bench` output into the
// BENCH_<n>.json trajectory artifact. It reads benchmark output on
// stdin and writes one JSON document recording ns/op, B/op, and
// allocs/op for every benchmark, stamped with the PR number and the
// Go environment that produced it:
//
//	go test -run '^$' -bench . -benchmem ./... | netfail-bench -pr 4 -o BENCH_4.json
//
// With -prev BENCH_3.json it also prints a cur-vs-prev ratio table to
// stderr, and -max-allocs Benchmark=N (repeatable) turns the run into
// a gate that fails when a pinned hot path regresses past its
// allocs/op budget — `make bench-compare` drives that mode.
//
// scripts/bench.sh (and `make bench`) is the canonical driver; CI
// uploads the resulting file as a build artifact so the benchmark
// trajectory across the PR stack stays diffable.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"

	"netfail/internal/benchfmt"
)

func main() {
	pr := flag.Int("pr", 0, "PR sequence number recorded in the report")
	out := flag.String("o", "", "output file (default stdout)")
	prev := flag.String("prev", "", "previous BENCH_<n>.json to print a cur-vs-prev ratio table against")
	scale := flag.Bool("scale", false, "ignore stdin: run the spill-campaign scale points in-process and record them")
	scaleMult := flag.String("scale-mult", "1,10", "with -scale: comma-separated CENIC multipliers, ascending")
	scaleDays := flag.Int("scale-days", 0, "with -scale: campaign length in days (0 = the paper's full 13-month window)")
	scaleSeed := flag.Int64("scale-seed", 1, "with -scale: campaign seed")
	scaleMaxRSS := flag.Int64("scale-max-rss-mb", 0, "with -scale: fail if peak RSS exceeds this many MB (0 = no bound)")
	var pairSpecs []string
	flag.Func("pair", "record a base=variant overhead ratio (repeatable), e.g. -pair BenchmarkAnalyzeMonth=BenchmarkAnalyzeMonthTraced", func(s string) error {
		if !strings.Contains(s, "=") {
			return fmt.Errorf("want base=variant, got %q", s)
		}
		pairSpecs = append(pairSpecs, s)
		return nil
	})
	type allocPin struct {
		name string
		max  int64
	}
	var pins []allocPin
	flag.Func("max-allocs", "fail unless the named benchmark reported at most N allocs/op (repeatable), e.g. -max-allocs BenchmarkSyslogExtract=8", func(s string) error {
		name, limit, ok := strings.Cut(s, "=")
		if !ok {
			return fmt.Errorf("want name=N, got %q", s)
		}
		max, err := strconv.ParseInt(limit, 10, 64)
		if err != nil {
			return fmt.Errorf("bad alloc limit %q: %v", limit, err)
		}
		pins = append(pins, allocPin{name, max})
		return nil
	})
	flag.Parse()

	if *scale {
		if err := runScaleMode(*scaleMult, *scaleDays, *scaleSeed, *scaleMaxRSS, *pr, *out); err != nil {
			fmt.Fprintln(os.Stderr, "netfail-bench:", err)
			os.Exit(1)
		}
		return
	}

	entries, goos, goarch, procs, err := benchfmt.Parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "netfail-bench:", err)
		os.Exit(1)
	}
	if len(entries) == 0 {
		fmt.Fprintln(os.Stderr, "netfail-bench: no benchmark results on stdin")
		os.Exit(1)
	}
	if goos == "" {
		goos = runtime.GOOS
	}
	if goarch == "" {
		goarch = runtime.GOARCH
	}
	if procs == 0 {
		procs = runtime.GOMAXPROCS(0)
	}
	rep := benchfmt.Report{
		PR:         *pr,
		GoVersion:  runtime.Version(),
		GoOS:       goos,
		GoArch:     goarch,
		GoMaxProcs: procs,
		Benchmarks: entries,
	}
	for _, spec := range pairSpecs {
		base, variant, _ := strings.Cut(spec, "=")
		p, err := benchfmt.MakePair(entries, base, variant)
		if err != nil {
			fmt.Fprintln(os.Stderr, "netfail-bench:", err)
			os.Exit(1)
		}
		rep.Pairs = append(rep.Pairs, p)
		fmt.Fprintf(os.Stderr, "netfail-bench: pair %s vs %s: ratio %.4f\n", variant, base, p.NsRatio)
	}

	failed := false
	for _, pin := range pins {
		if err := benchfmt.AssertAllocs(entries, pin.name, pin.max); err != nil {
			fmt.Fprintln(os.Stderr, "netfail-bench:", err)
			failed = true
		} else {
			fmt.Fprintf(os.Stderr, "netfail-bench: alloc pin %s <= %d: ok\n", pin.name, pin.max)
		}
	}

	if *prev != "" {
		f, err := os.Open(*prev)
		if err != nil {
			fmt.Fprintln(os.Stderr, "netfail-bench:", err)
			os.Exit(1)
		}
		prevRep, err := benchfmt.Read(f)
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, "netfail-bench:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "netfail-bench: vs %s (PR %d):\n", *prev, prevRep.PR)
		benchfmt.WriteDeltaTable(os.Stderr, benchfmt.Compare(prevRep.Benchmarks, entries))
	}

	if failed {
		os.Exit(1)
	}

	// An existing report's scale points survive a benchmark rewrite:
	// the two sections are produced by different drivers (`make bench`
	// vs `make scale`) but share the trajectory artifact.
	if *out != "" {
		if f, oerr := os.Open(*out); oerr == nil {
			if old, rerr := benchfmt.Read(f); rerr == nil {
				rep.Scale = old.Scale
			}
			f.Close()
		}
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "netfail-bench:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := benchfmt.Write(w, rep); err != nil {
		fmt.Fprintln(os.Stderr, "netfail-bench:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "netfail-bench: %d benchmarks", len(entries))
	if *out != "" {
		fmt.Fprintf(os.Stderr, " -> %s", *out)
	}
	fmt.Fprintln(os.Stderr)
}
