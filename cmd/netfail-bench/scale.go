package main

import (
	"context"
	"fmt"
	"io/fs"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"time"

	"netfail"
	"netfail/internal/benchfmt"
	"netfail/internal/capture"
	"netfail/internal/clock"
	"netfail/internal/netsim"
)

// runScaleMode is the -scale entry point: run the points, print the
// scale table, and write (or update) the BENCH_<n>.json report. An
// existing report at out keeps its benchmark entries — scale points
// and `go test -bench` results are gathered by different drivers but
// land in one trajectory artifact.
func runScaleMode(multSpec string, days int, seed, maxRSSMB int64, pr int, out string) error {
	var mults []int
	for _, s := range strings.Split(multSpec, ",") {
		m, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil {
			return fmt.Errorf("bad -scale-mult %q: %v", multSpec, err)
		}
		mults = append(mults, m)
	}
	results, err := runScale(mults, days, seed, maxRSSMB)
	if len(results) > 0 {
		benchfmt.WriteScaleTable(os.Stderr, results)
	}
	if err != nil {
		return err
	}
	rep := benchfmt.Report{
		PR:         pr,
		GoVersion:  runtime.Version(),
		GoOS:       runtime.GOOS,
		GoArch:     runtime.GOARCH,
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Scale:      results,
	}
	if out == "" {
		return benchfmt.Write(os.Stdout, rep)
	}
	if f, rerr := os.Open(out); rerr == nil {
		if old, oerr := benchfmt.Read(f); oerr == nil {
			rep.Benchmarks, rep.Pairs = old.Benchmarks, old.Pairs
		}
		f.Close()
	}
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	if err := benchfmt.Write(f, rep); err != nil {
		f.Close()
		return err
	}
	fmt.Fprintf(os.Stderr, "netfail-bench: %d scale points -> %s\n", len(results), out)
	return f.Close()
}

// runScale executes the spill-campaign scale points in-process: for
// each multiplier m it simulates a sharded capture of the backbone
// plus m-1 spine/leaf pod domains into a temp directory, streams it
// back through the full analysis, and records events/sec, on-disk
// capture size, per-phase wall-clock, and the process's peak RSS.
//
// Multipliers must ascend: ru_maxrss is a high-water mark, so running
// small-to-large is what lets each point's reading bound that point.
func runScale(mults []int, days int, seed int64, maxRSSMB int64) ([]benchfmt.ScaleResult, error) {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	clk := clock.System()

	var results []benchfmt.ScaleResult
	prev := 0
	for _, m := range mults {
		if m < 1 {
			return nil, fmt.Errorf("scale multiplier %d < 1", m)
		}
		if m <= prev {
			return nil, fmt.Errorf("scale multipliers must ascend (peak RSS is a high-water mark), got %d after %d", m, prev)
		}
		prev = m
		r, err := runScalePoint(ctx, clk, m, days, seed)
		if err != nil {
			return nil, err
		}
		fmt.Fprintf(os.Stderr, "netfail-bench: %s: %d events in %.1fs sim + %.1fs analyze, peak RSS %.1f MB\n",
			r.Name, r.Events, r.SimulateSec, r.AnalyzeSec, float64(r.PeakRSSKB)/1024)
		results = append(results, r)
	}
	if maxRSSMB > 0 {
		peak := results[len(results)-1].PeakRSSKB / 1024
		if peak > maxRSSMB {
			return results, fmt.Errorf("peak RSS %d MB exceeds the -scale-max-rss-mb %d MB bound", peak, maxRSSMB)
		}
		fmt.Fprintf(os.Stderr, "netfail-bench: peak RSS %d MB within the %d MB bound\n", peak, maxRSSMB)
	}
	return results, nil
}

func runScalePoint(ctx context.Context, clk clock.Clock, mult, days int, seed int64) (benchfmt.ScaleResult, error) {
	dir, err := os.MkdirTemp("", "netfail-scale-")
	if err != nil {
		return benchfmt.ScaleResult{}, err
	}
	defer os.RemoveAll(dir)

	cfg := netsim.Config{Seed: seed}
	if days > 0 {
		cfg.Start = netsim.StudyStart
		cfg.End = netsim.StudyStart.Add(time.Duration(days) * 24 * time.Hour)
	}
	var fabric netfail.FabricSpec
	if mult > 1 {
		fabric = netfail.DefaultFabricSpec(mult - 1)
	}

	t0 := clk.Now()
	camp, err := netfail.SimulateToCapture(ctx, cfg, fabric, dir)
	if err != nil {
		return benchfmt.ScaleResult{}, fmt.Errorf("scale-%dx simulate: %w", mult, err)
	}
	simSec := clk.Now().Sub(t0).Seconds()

	t1 := clk.Now()
	study, _, err := netfail.AnalyzeCaptureDir(ctx, dir, false)
	if err != nil {
		return benchfmt.ScaleResult{}, fmt.Errorf("scale-%dx analyze: %w", mult, err)
	}
	anSec := clk.Now().Sub(t1).Seconds()
	if study.Analysis == nil {
		return benchfmt.ScaleResult{}, fmt.Errorf("scale-%dx: empty analysis", mult)
	}

	cm, err := capture.ReadManifestDir(filepath.Join(dir, netfail.CaptureDirName))
	if err != nil {
		return benchfmt.ScaleResult{}, err
	}
	sy, ls := cm.Records()
	events := sy + ls
	rate := 0.0
	if simSec+anSec > 0 {
		rate = float64(events) / (simSec + anSec)
	}
	return benchfmt.ScaleResult{
		Name:         fmt.Sprintf("scale-%dx", mult),
		Multiplier:   mult,
		Shards:       len(cm.Shards),
		Links:        len(camp.Network.Links),
		Events:       events,
		CaptureBytes: dirBytes(filepath.Join(dir, netfail.CaptureDirName)),
		SimulateSec:  simSec,
		AnalyzeSec:   anSec,
		EventsPerSec: rate,
		PeakRSSKB:    peakRSSKB(),
	}, nil
}

// dirBytes totals the regular files under dir; 0 on any walk error
// (the size is reporting, not correctness).
func dirBytes(dir string) int64 {
	var total int64
	_ = filepath.WalkDir(dir, func(_ string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return err
		}
		if info, ierr := d.Info(); ierr == nil {
			total += info.Size()
		}
		return nil
	})
	return total
}
