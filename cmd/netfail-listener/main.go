// Command netfail-listener demonstrates the live wire path of the
// passive IS-IS listener: binary LSPs arrive over UDP (one PDU per
// datagram), are decoded, resolved onto the config-mined link
// namespace, and printed as link state transitions as they happen —
// the role PyRT played in the paper.
//
// Receive mode (run first):
//
//	netfail-listener -listen 127.0.0.1:9127 -configs ./campaign/configs
//
// Replay mode (send a captured campaign to a listener):
//
//	netfail-listener -replay ./campaign/lsps.log -to 127.0.0.1:9127
//
// With -debug-addr the receive loop also serves an HTTP debug
// endpoint: live pipeline counters at /debug/netfail and /debug/vars
// (expvar), and the net/http/pprof profiles under /debug/pprof/.
package main

import (
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"syscall"
	"time"

	"netfail/internal/api"
	"netfail/internal/backoff"
	"netfail/internal/clock"
	"netfail/internal/config"
	"netfail/internal/isis"
	"netfail/internal/listener"
	"netfail/internal/netsim"
	"netfail/internal/obs"
	"netfail/internal/topo"
)

func main() {
	var (
		listen  = flag.String("listen", "", "address to receive LSPs on (receive mode)")
		configs = flag.String("configs", "", "config archive directory for the link namespace (receive mode)")
		replay  = flag.String("replay", "", "LSP capture file to transmit (replay mode)")
		to      = flag.String("to", "", "destination address (replay mode)")
		limit   = flag.Int("limit", 0, "stop after this many LSPs (0 = unlimited)")
		debug   = config.DebugAddrFlag(flag.CommandLine)
	)
	flag.Parse()

	var err error
	switch {
	case *listen != "" && *configs != "":
		err = receive(*listen, *configs, *limit, clock.System(), *debug)
	case *replay != "" && *to != "":
		err = transmit(*replay, *to)
	default:
		err = fmt.Errorf("need either -listen with -configs, or -replay with -to")
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "netfail-listener:", err)
		os.Exit(1)
	}
}

func receive(addr, configDir string, limit int, clk clock.Clock, debugAddr string) error {
	archive, err := config.LoadDir(configDir)
	if err != nil {
		return err
	}
	mined, err := config.Mine(archive)
	if err != nil {
		return err
	}
	udpAddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return err
	}
	conn, err := net.ListenUDP("udp", udpAddr)
	if err != nil {
		return err
	}
	defer conn.Close()
	fmt.Printf("listening on %s; %d routers, %d links in namespace\n",
		conn.LocalAddr(), len(mined.Network.Routers), len(mined.Network.Links))

	// Live counters: drops must be observable while the capture runs,
	// not just in the exit summary — a listener that silently drops
	// LSPs for hours is the paper's syslog failure mode reproduced.
	reg := obs.NewRegistry()
	if debugAddr != "" {
		obs.Publish("netfail-listener", reg)
		srv := &http.Server{Addr: debugAddr, Handler: api.NewMux(api.Options{Registry: reg})}
		go func() {
			if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				fmt.Fprintf(os.Stderr, "debug endpoint: %v\n", err)
			}
		}()
		defer srv.Close()
		fmt.Printf("debug endpoint on http://%s/debug/netfail\n", debugAddr)
	}

	l := listener.New(mined.Network)
	var listenerID topo.SystemID // all-zero passive system ID
	buf := make([]byte, 64*1024)
	emitted := 0
	// A persistent socket error must not silently end the capture
	// mid-campaign: retry transient failures on the shared
	// backoff.Default schedule (the same one syslog.Collector walks),
	// give up loudly only when the budget is spent.
	retry := backoff.Default.New()
	for limit == 0 || l.Results().LSPCount < limit {
		n, from, err := conn.ReadFromUDP(buf)
		if err != nil {
			var nerr net.Error
			if errors.As(err, &nerr) && nerr.Timeout() {
				retry.Reset()
				continue
			}
			reg.Counter("listener.read_errors").Add(1)
			d, ok := retry.Next()
			if !ok {
				return fmt.Errorf("capture stopped after %d consecutive read errors: %w", retry.Attempts(), err)
			}
			fmt.Fprintf(os.Stderr, "read error (retry %d/%d): %v\n", retry.Attempts(), backoff.Default.Retries, err)
			time.Sleep(d)
			continue
		}
		retry.Reset()
		// Copy: Process retains no reference, but the decode reads
		// beyond this iteration via the LSP database.
		pkt := append([]byte(nil), buf[:n]...)

		// Database synchronization: a CSNP describes the sender's
		// database; answer with a PSNP requesting what we lack
		// (ISO 10589 §7.3.17), exactly how a listener catches up.
		if typ, terr := isis.PeekType(pkt); terr == nil && typ == isis.TypeCSNPL2 {
			var csnp isis.CSNP
			if err := csnp.DecodeFromBytes(pkt); err != nil {
				fmt.Fprintf(os.Stderr, "bad CSNP: %v\n", err)
				continue
			}
			plan := l.Database().CompareCSNP(&csnp)
			if len(plan.Request) > 0 {
				if wire, err := plan.BuildPSNP(listenerID).Encode(); err == nil {
					if _, err := conn.WriteToUDP(wire, from); err != nil {
						fmt.Fprintf(os.Stderr, "psnp send: %v\n", err)
					}
				}
				fmt.Printf("CSNP from %v: requesting %d LSPs via PSNP\n", csnp.Source, len(plan.Request))
			}
			continue
		}

		reg.Counter("listener.datagrams").Add(1)
		if err := l.Process(clk.Now(), pkt); err != nil {
			reg.Counter("drops.listener.decode_errors").Add(1)
			fmt.Fprintf(os.Stderr, "decode error: %v\n", err)
			continue
		}
		res := l.Results()
		reg.Gauge("listener.lsps").Set(int64(res.LSPCount))
		reg.Gauge("transitions.listener.is").Set(int64(len(res.ISTransitions)))
		for _, tr := range res.ISTransitions[emitted:] {
			fmt.Printf("%s %-4s %s (reported by %s)\n",
				tr.Time.Format("15:04:05.000"), tr.Dir, tr.Link, tr.Reporter)
		}
		emitted = len(res.ISTransitions)
	}
	res := l.Results()
	fmt.Printf("done: %d LSPs, %d IS transitions, %d IP transitions, %d stale, %d decode errors\n",
		res.LSPCount, len(res.ISTransitions), len(res.IPTransitions), res.StaleLSPs, res.DecodeErrors)
	return nil
}

func transmit(capture, to string) error {
	f, err := os.Open(capture)
	if err != nil {
		return err
	}
	defer f.Close()
	log, err := netsim.ReadLSPLog(f)
	if err != nil {
		return err
	}
	conn, err := net.Dial("udp", to)
	if err != nil {
		return err
	}
	defer conn.Close()
	sent := 0
	// Transient send failures walk the shared backoff schedule instead
	// of aborting the replay on the first hiccup; only a persistent
	// error (budget spent) is terminal.
	retry := backoff.Default.New()
	for i := 0; i < len(log); {
		if _, err := conn.Write(log[i].Data); err != nil {
			// A receiver that got what it wanted (-limit) closes its
			// socket while we still hold packets; the kernel reflects
			// the ICMP port-unreachable onto this connected socket as
			// ECONNREFUSED. For UDP that is "receiver done", not a
			// transmission failure — exit clean, no retrying.
			if errors.Is(err, syscall.ECONNREFUSED) {
				fmt.Printf("replayed %d of %d LSPs to %s (receiver closed)\n", sent, len(log), to)
				return nil
			}
			d, ok := retry.Next()
			if !ok {
				return fmt.Errorf("replay stopped after %d consecutive send errors: %w", retry.Attempts(), err)
			}
			time.Sleep(d)
			continue
		}
		retry.Reset()
		sent++
		i++
	}
	fmt.Printf("replayed %d LSPs to %s\n", len(log), to)
	return nil
}
