// Command netfail-analyze runs the paper's comparison pipeline over a
// captured campaign directory (as written by netfail-sim): it mines
// the configuration archive into the common link namespace, replays
// the LSP capture through the passive IS-IS listener, reconstructs
// failures from both data sources, and prints the requested tables
// and figures with the paper's published values alongside.
//
// Usage:
//
//	netfail-analyze -data ./campaign                 # everything
//	netfail-analyze -data ./campaign -table 4        # one table
//	netfail-analyze -data ./campaign -figure knee    # window sweep
//	netfail-analyze -data ./campaign -lenient        # salvage mode
//	netfail-analyze -data ./campaign -parallelism 1  # sequential reference
//	netfail-analyze -seed 1 -days 31 -trace -metrics # instrumented run
//
// The analysis pipeline shards per link across a bounded worker pool
// (one worker per CPU by default); -parallelism bounds it explicitly.
// Output is byte-identical for every worker count, so -parallelism 1
// is purely a debugging/baseline switch, not a different analysis.
//
// Observability flags (none of them changes the analysis output):
//
//	-trace       print the hierarchical stage/worker span tree to stderr
//	-trace-json  write the same spans as Chrome trace_event JSON
//	             (load in chrome://tracing or Perfetto)
//	-metrics     print the pipeline's named counters to stderr
//	-progress    stream stage start/finish and shard events to stderr
//
// Interrupting the process (SIGINT) cancels the pipeline at the next
// stage or shard boundary.
//
// In -lenient mode malformed capture records are skipped instead of
// aborting the analysis; a per-file salvage report goes to stderr, and
// the process exits with code 3 (instead of 0) when any record was
// dropped, so scripts can distinguish a clean analysis from a salvaged
// one.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"time"

	"netfail"
	"netfail/internal/config"
	"netfail/internal/core"
	"netfail/internal/listener"
	"netfail/internal/netsim"
	"netfail/internal/obs"
	"netfail/internal/report"
	"netfail/internal/salvage"
	"netfail/internal/syslog"
	"netfail/internal/tickets"
	"netfail/internal/topo"
	"netfail/internal/trace"
)

func main() {
	var (
		data      = flag.String("data", "campaign", "campaign directory written by netfail-sim")
		seed      = flag.Int64("seed", 0, "skip the directory: simulate+analyze in memory with this seed")
		days      = flag.Int("days", 0, "with -seed: simulate this many days instead of the full 13-month study")
		table     = flag.Int("table", 0, "render only this table (1-7)")
		figure    = flag.String("figure", "", "render only this figure: 1a, 1b, 1c, knee, policies")
		svgDir    = flag.String("svg", "", "also write figure1[abc].svg and knee.svg into this directory")
		export    = flag.String("export", "", "also write the reconstructed transition streams into this directory")
		multi     = flag.Bool("multilink", false, "include multi-link adjacencies (pair with netfail-sim -linkids)")
		md        = flag.Bool("markdown", false, "emit a markdown reproduction report with automated verdicts")
		storeDir  = flag.String("store", "", "also write an indexed failure store into this directory (query with netfail-query)")
		strictF   = config.StrictnessFlags(flag.CommandLine, false)
		par       = config.ParallelismFlag(flag.CommandLine)
		traceTree = config.TraceFlag(flag.CommandLine)
		traceJSON = config.TraceJSONFlag(flag.CommandLine)
		metrics   = config.MetricsFlag(flag.CommandLine)
		progress  = config.ProgressFlag(flag.CommandLine)
	)
	flag.Parse()
	lenientMode, err := strictF.Lenient()
	if err != nil {
		fmt.Fprintln(os.Stderr, "netfail-analyze:", err)
		os.Exit(2)
	}
	lenient := &lenientMode

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	var tracer *obs.Tracer
	if *traceTree || *traceJSON != "" {
		tracer = obs.NewTracer()
	}
	var reg *obs.Registry
	if *metrics {
		reg = obs.NewRegistry()
	}
	ctx = obs.WithTracer(ctx, tracer)
	ctx = obs.WithRegistry(ctx, reg)
	if *progress {
		ctx = obs.WithProgress(ctx, func(ev obs.Event) {
			fmt.Fprintf(os.Stderr, "progress: %s\n", ev)
		})
	}

	salvaged := false
	if *seed != 0 {
		err = runSeed(ctx, *seed, *days, *table, *figure, *svgDir, *export, *multi, *md, *par, *storeDir)
	} else {
		salvaged, err = run(ctx, *data, *table, *figure, *svgDir, *export, *multi, *md, *lenient, *par, *storeDir)
	}
	// The observability artifacts describe whatever ran, so they are
	// written even when the pipeline was canceled midway.
	if tracer != nil && *traceTree {
		if werr := tracer.WriteTree(os.Stderr); werr != nil {
			fmt.Fprintln(os.Stderr, "netfail-analyze: writing span tree:", werr)
		}
	}
	if tracer != nil && *traceJSON != "" {
		if werr := writeChrome(tracer, *traceJSON); werr != nil {
			fmt.Fprintln(os.Stderr, "netfail-analyze: writing trace JSON:", werr)
		}
	}
	if reg != nil {
		if werr := reg.WriteText(os.Stderr); werr != nil {
			fmt.Fprintln(os.Stderr, "netfail-analyze: writing metrics:", werr)
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "netfail-analyze:", err)
		if errors.Is(err, context.Canceled) {
			os.Exit(130)
		}
		os.Exit(1)
	}
	if salvaged {
		os.Exit(3)
	}
}

func writeChrome(tracer *obs.Tracer, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tracer.WriteChromeTrace(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// runSeed simulates and analyzes entirely in memory via the public
// pipeline (the context already carries any observability consumers).
func runSeed(ctx context.Context, seed int64, days, table int, figure, svgDir, exportDir string, multi, md bool, parallelism int, storeDir string) error {
	cfg := netsim.Config{Seed: seed}
	if days > 0 {
		cfg.Start = netsim.StudyStart
		cfg.End = netsim.StudyStart.Add(time.Duration(days) * 24 * time.Hour)
	}
	opts := []netfail.Option{netfail.WithMultiLink(multi), netfail.WithParallelism(parallelism)}
	if storeDir != "" {
		opts = append(opts, netfail.WithStoreDir(storeDir))
	}
	study, err := netfail.Run(ctx, cfg, opts...)
	if err != nil {
		return err
	}
	return render(ctx, study.Analysis, study.Campaign.Archive, study.Campaign.Counts,
		table, figure, svgDir, exportDir, md)
}

func run(ctx context.Context, dir string, table int, figure, svgDir, exportDir string, multi, md, lenient bool, parallelism int, storeDir string) (salvaged bool, err error) {
	var (
		a              *core.Analysis
		campaignCounts netsim.Counts
		archive        *config.Archive
		reports        []salvageEntry
	)
	if netfail.IsCaptureCampaign(dir) {
		// Sharded spill capture: stream the shards back through the
		// library pipeline instead of loading flat log files.
		opts := []netfail.Option{netfail.WithMultiLink(multi), netfail.WithParallelism(parallelism)}
		if storeDir != "" {
			opts = append(opts, netfail.WithStoreDir(storeDir))
		}
		study, caps, cerr := netfail.AnalyzeCaptureDir(ctx, dir, lenient, opts...)
		if cerr != nil {
			return false, cerr
		}
		a, campaignCounts, archive = study.Analysis, study.Campaign.Counts, study.Campaign.Archive
		for _, c := range caps {
			if !lenient {
				// Strict mode only surfaces intact-but-unparseable
				// lines, mirroring the flat loader's warning (frame
				// damage already aborted above) — not an exit-3 salvage.
				if c.Report.Skipped > 0 {
					fmt.Fprintf(os.Stderr, "netfail-analyze: %s: %d records skipped\n", c.Name, c.Report.Skipped)
				}
				continue
			}
			reports = append(reports, salvageEntry{c.Name, c.Report})
		}
	} else {
		if storeDir != "" {
			return false, fmt.Errorf("-store needs the library pipeline: use -seed mode or a sharded capture campaign (netfail-sim -spill)")
		}
		a, campaignCounts, archive, reports, err = loadAndAnalyze(ctx, dir, multi, lenient, parallelism)
		if err != nil {
			return false, err
		}
	}
	for _, r := range reports {
		fmt.Fprintf(os.Stderr, "netfail-analyze: salvage %s: %s\n", r.name, r.rep)
		obs.AddSalvage(obs.RegistryFrom(ctx), "salvage."+r.name, r.rep)
		if !r.rep.Clean() {
			salvaged = true
		}
	}
	return salvaged, render(ctx, a, archive, campaignCounts, table, figure, svgDir, exportDir, md)
}

// render prints the requested tables/figures.
func render(ctx context.Context, a *core.Analysis, archive *config.Archive, campaignCounts netsim.Counts, table int, figure, svgDir, exportDir string, md bool) error {
	w := os.Stdout
	if exportDir != "" {
		if err := exportTransitions(a, exportDir); err != nil {
			return err
		}
	}
	if svgDir != "" {
		paths, err := report.SaveFigures(svgDir, a.Figure1(), a.WindowKnee(nil))
		if err != nil {
			return err
		}
		for _, p := range paths {
			fmt.Fprintf(os.Stderr, "wrote %s\n", p)
		}
	}
	if md {
		return report.Markdown(w, a, archive.FileCount(), campaignCounts.LSPUpdates)
	}

	if table == 0 && figure == "" {
		// Everything, through the sectioned (and span-traced) renderer.
		return report.FullReport(ctx, w, a, archive.FileCount(), campaignCounts.LSPUpdates, a.In.Parallelism)
	}
	if table != 0 {
		return renderTable(w, a, archive, campaignCounts, table)
	}
	switch figure {
	case "1a", "1b", "1c", "1":
		return report.RenderFigure1(w, a.Figure1())
	case "knee":
		return report.RenderKnee(w, a.WindowKnee(nil))
	case "policies":
		return report.RenderPolicies(w, a.PolicyAblation())
	default:
		return fmt.Errorf("unknown figure %q", figure)
	}
}

func renderTable(w *os.File, a *core.Analysis, archive *config.Archive, counts netsim.Counts, n int) error {
	switch n {
	case 1:
		return report.RenderTable1(w, a.Table1(archive.FileCount(), counts.LSPUpdates))
	case 2:
		return report.RenderTable2(w, a.Table2())
	case 3:
		return report.RenderTable3(w, a.Table3())
	case 4:
		return report.RenderTable4(w, a.Table4())
	case 5:
		return report.RenderTable5(w, a.Table5())
	case 6:
		return report.RenderTable6(w, a.Table6())
	case 7:
		return report.RenderTable7(w, a.Table7())
	default:
		return fmt.Errorf("no table %d", n)
	}
}

// exportTransitions writes the reconstructed streams for downstream
// tooling: syslog (merged per-link), IS reachability, IP
// reachability.
func exportTransitions(a *core.Analysis, dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	write := func(name string, ts []trace.Transition) error {
		f, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			return err
		}
		if err := trace.WriteTransitions(f, ts); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}
	if err := write("syslog-transitions.log", a.SyslogAdj); err != nil {
		return err
	}
	if err := write("is-reach-transitions.log", a.ISReach); err != nil {
		return err
	}
	return write("ip-reach-transitions.log", a.IPReach)
}

// salvageEntry names one capture file's salvage report.
type salvageEntry struct {
	name string
	rep  *salvage.Report
}

// loadAndAnalyze reads every capture artifact and runs the pipeline.
// In lenient mode malformed records are skipped and accounted in the
// returned per-file salvage reports; in strict mode the first
// malformed record aborts with a line-accurate error.
func loadAndAnalyze(ctx context.Context, dir string, multi, lenient bool, parallelism int) (*core.Analysis, netsim.Counts, *config.Archive, []salvageEntry, error) {
	fail := func(err error) (*core.Analysis, netsim.Counts, *config.Archive, []salvageEntry, error) {
		return nil, netsim.Counts{}, nil, nil, err
	}
	var reports []salvageEntry

	lctx, loadDone := obs.Stage(ctx, "load")
	mf, err := os.Open(filepath.Join(dir, "manifest.json"))
	if err != nil {
		loadDone()
		return fail(err)
	}
	var manifest *netsim.Manifest
	if lenient {
		var rep *salvage.Report
		manifest, rep, err = netsim.ReadManifestLenient(mf)
		if err == nil {
			reports = append(reports, salvageEntry{"manifest.json", rep})
		}
	} else {
		manifest, err = netsim.ReadManifest(mf)
	}
	mf.Close()
	if err != nil {
		loadDone()
		return fail(err)
	}

	archive, err := config.LoadDir(filepath.Join(dir, "configs"))
	if err != nil {
		loadDone()
		return fail(err)
	}
	mined, err := config.Mine(archive)
	if err != nil {
		loadDone()
		return fail(err)
	}

	sf, err := os.Open(filepath.Join(dir, "syslog.log"))
	if err != nil {
		loadDone()
		return fail(err)
	}
	msgs, syslogRep, err := syslog.ReadLogLenient(sf, manifest.Start)
	sf.Close()
	if err != nil {
		loadDone()
		return fail(err)
	}
	if lenient {
		reports = append(reports, salvageEntry{"syslog.log", syslogRep})
	} else if syslogRep.Skipped > 0 {
		fmt.Fprintf(os.Stderr, "netfail-analyze: %d unparseable syslog lines skipped\n", syslogRep.Skipped)
	}

	lf, err := os.Open(filepath.Join(dir, "lsps.log"))
	if err != nil {
		loadDone()
		return fail(err)
	}
	var lsps []netsim.CapturedLSP
	if lenient {
		var rep *salvage.Report
		lsps, rep, err = netsim.ReadLSPLogLenient(lf)
		if err == nil {
			reports = append(reports, salvageEntry{"lsps.log", rep})
		}
	} else {
		lsps, err = netsim.ReadLSPLog(lf)
	}
	lf.Close()
	if err != nil {
		loadDone()
		return fail(err)
	}
	obs.Add(lctx, "drops.salvage.records", int64(salvageSkips(reports)))
	loadDone()

	sctx, listenDone := obs.Stage(ctx, "listen")
	l := listener.New(mined.Network)
	decodeFailures := 0
	for i, c := range lsps {
		if i%1024 == 0 {
			if cerr := sctx.Err(); cerr != nil {
				listenDone()
				return fail(cerr)
			}
		}
		if err := l.Process(c.Time, c.Data); err != nil {
			if !lenient {
				listenDone()
				return fail(fmt.Errorf("LSP capture: record %d at %s: %w", i, c.Time.UTC().Format(time.RFC3339), err))
			}
			// Salvaged-but-corrupt payloads land in the listener's
			// decode-error accounting instead of aborting.
			decodeFailures++
		}
	}
	res := l.Results()
	obs.Add(sctx, "listener.lsps", int64(res.LSPCount))
	obs.Add(sctx, "drops.listener.decode_errors", int64(res.DecodeErrors+decodeFailures))
	listenDone()
	if lenient && decodeFailures > 0 {
		reports = append(reports, salvageEntry{"lsps.log payloads", &salvage.Report{
			Kept:    len(lsps) - decodeFailures,
			Skipped: decodeFailures,
			Reasons: map[string]int{"undecodable LSP payload": decodeFailures},
		}})
	}

	tf, err := os.Open(filepath.Join(dir, "tickets.json"))
	if err != nil {
		return fail(err)
	}
	corpus, err := tickets.ReadJSON(tf)
	tf.Close()
	if err != nil {
		return fail(err)
	}

	cf, err := os.Open(filepath.Join(dir, "customers.json"))
	if err != nil {
		return fail(err)
	}
	customers, err := topo.ReadCustomersJSON(cf)
	cf.Close()
	if err != nil {
		return fail(err)
	}

	a, err := core.Analyze(ctx, core.Input{
		Network:          mined.Network,
		Customers:        customers,
		Syslog:           msgs,
		ISTransitions:    res.ISTransitions,
		IPTransitions:    res.IPTransitions,
		Start:            manifest.Start,
		End:              manifest.End,
		ListenerOffline:  manifest.Offline(),
		Tickets:          tickets.NewIndex(corpus),
		IncludeMultiLink: multi,
		Parallelism:      parallelism,
	})
	if err != nil {
		return fail(err)
	}
	return a, manifest.Counts, archive, reports, nil
}

// salvageSkips totals the records dropped across the salvage reports.
func salvageSkips(reports []salvageEntry) int {
	n := 0
	for _, r := range reports {
		n += r.rep.Skipped
	}
	return n
}
