// Command netfail-serve is the crash-safe ingest daemon: it runs the
// capture sources under supervision, journals every record to a
// checkpointed WAL before applying it, and survives being killed at
// any instant — on restart it recovers the durable history and
// resumes exactly where it stopped, so a resumed campaign's final
// report is byte-identical to an uninterrupted run's.
//
// Replay mode (serve a captured campaign through the ingest path):
//
//	netfail-serve -data ./campaign -state ./state -report report.txt
//
// Live mode (receive syslog datagrams and LSPs over UDP):
//
//	netfail-serve -listen-syslog :5514 -listen-isis :9127 \
//	    -configs ./campaign/configs -state ./state
//
// Robustness knobs:
//
//	-queue N / -policy block|drop-oldest|drop-newest   backpressure
//	-snapshot-every N       checkpoint cadence (appends per snapshot)
//	-drain-timeout D        bound on the SIGTERM drain
//	-fsync-each             power-loss durability (fsync per append)
//	-strict / -lenient      refuse vs. salvage damaged checkpoint state
//	-debug-addr ADDR        the versioned /api/v1 surface (metrics,
//	                        health, ready) plus the /debug, /ready and
//	                        /healthz aliases
//	-store DIR              also serve this indexed failure store's
//	                        query endpoints under /api/v1
//
// The chaos harness drives -chaos-kill-after N: the daemon SIGKILLs
// itself after N durable appends, and `make chaos` asserts that a
// restarted run finishes with a byte-identical report.
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"sync"
	"syscall"
	"time"

	"netfail/internal/api"
	"netfail/internal/clock"
	"netfail/internal/config"
	"netfail/internal/core"
	"netfail/internal/listener"
	"netfail/internal/netsim"
	"netfail/internal/obs"
	"netfail/internal/report"
	"netfail/internal/serve"
	"netfail/internal/store"
	"netfail/internal/syslog"
	"netfail/internal/tickets"
	"netfail/internal/topo"
)

func main() {
	var (
		data          = flag.String("data", "", "campaign directory to replay through the ingest path (replay mode)")
		listenSyslog  = flag.String("listen-syslog", "", "UDP address to receive syslog datagrams on (live mode)")
		listenISIS    = flag.String("listen-isis", "", "UDP address to receive LSPs on (live mode)")
		configs       = flag.String("configs", "", "config archive directory for the link namespace (live mode)")
		state         = flag.String("state", "", "checkpoint directory (required); survives kills and restarts")
		reportPath    = flag.String("report", "", "write the final analysis report here (replay mode)")
		queueSize     = flag.Int("queue", 1024, "per-source ingest queue capacity")
		policyFlag    = flag.String("policy", "block", "full-queue policy: block, drop-oldest, or drop-newest")
		snapshotEvery = flag.Int("snapshot-every", 4096, "checkpoint the full state every N durable appends (0: only at shutdown)")
		drainTimeout  = flag.Duration("drain-timeout", 10*time.Second, "bound on the shutdown drain; older backlog is shed")
		fsyncEach     = flag.Bool("fsync-each", false, "fsync every append: power-loss durability instead of kill durability")
		strictness    = config.StrictnessFlags(flag.CommandLine, true)
		debugAddr     = config.DebugAddrFlag(flag.CommandLine)
		storeDir      = flag.String("store", "", "indexed failure store to serve read-only under /api/v1 on -debug-addr")
		chaosKill     = flag.Int("chaos-kill-after", 0, "SIGKILL this process after N durable appends (chaos harness)")
	)
	flag.Parse()

	lenient, err := strictness.Lenient()
	if err != nil {
		fmt.Fprintln(os.Stderr, "netfail-serve:", err)
		os.Exit(2)
	}
	if err := run(*data, *listenSyslog, *listenISIS, *configs, *state, *reportPath,
		*queueSize, *policyFlag, *snapshotEvery, *drainTimeout, *fsyncEach, !lenient,
		*debugAddr, *storeDir, *chaosKill); err != nil {
		fmt.Fprintln(os.Stderr, "netfail-serve:", err)
		os.Exit(1)
	}
}

func run(data, listenSyslog, listenISIS, configDir, state, reportPath string,
	queueSize int, policyFlag string, snapshotEvery int, drainTimeout time.Duration,
	fsyncEach, strict bool, debugAddr, storeDir string, chaosKill int) error {
	if state == "" {
		return fmt.Errorf("-state is required: the checkpoint directory is what makes the daemon crash-safe")
	}
	policy, err := serve.ParsePolicy(policyFlag)
	if err != nil {
		return err
	}
	reg := obs.NewRegistry()
	cfg := serve.Config{
		Dir:           state,
		QueueSize:     queueSize,
		Policy:        policy,
		SnapshotEvery: snapshotEvery,
		DrainTimeout:  drainTimeout,
		FsyncEach:     fsyncEach,
		Strict:        strict,
		Registry:      reg,
		Clock:         clock.System(),
	}
	if chaosKill > 0 {
		cfg.AppendHook = func(total int) {
			if total == chaosKill {
				// The whole point: die the hard way, mid-ingest, with
				// no chance to flush or checkpoint.
				syscall.Kill(os.Getpid(), syscall.SIGKILL)
			}
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	switch {
	case data != "":
		return runReplay(ctx, cfg, reg, data, reportPath, debugAddr, storeDir)
	case listenSyslog != "" || listenISIS != "":
		if configDir == "" {
			return fmt.Errorf("live mode needs -configs for the link namespace")
		}
		return runLive(ctx, cfg, reg, listenSyslog, listenISIS, configDir, debugAddr, storeDir)
	default:
		return fmt.Errorf("need either -data (replay mode) or -listen-syslog/-listen-isis with -configs (live mode)")
	}
}

// serveDebug starts the HTTP endpoint: the versioned /api/v1 surface
// (metrics, health, readiness, and — with -store — the failure-store
// query endpoints) plus the pre-versioning /debug and probe aliases.
func serveDebug(addr, storeDir string, reg *obs.Registry, sup *serve.Supervisor) (func(), error) {
	if addr == "" {
		return func() {}, nil
	}
	var st *store.Store
	if storeDir != "" {
		var err error
		// The daemon serves the store read-only; open leniently so a
		// partially damaged store still answers what it can (salvage
		// accounting is visible at /api/v1/store).
		if st, err = store.OpenLenient(storeDir); err != nil {
			return nil, fmt.Errorf("-store %s: %w", storeDir, err)
		}
	}
	obs.Publish("netfail-serve", reg)
	mux := api.NewMux(api.Options{
		Registry: reg,
		Store:    st,
		Ready:    sup.ReadyHandler(),
		Healthz:  sup.HealthzHandler(),
	})
	srv := &http.Server{Addr: addr, Handler: mux}
	go func() {
		if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintf(os.Stderr, "debug endpoint: %v\n", err)
		}
	}()
	fmt.Printf("debug endpoint on http://%s/debug/netfail (API at /api/v1)\n", addr)
	return func() { srv.Close() }, nil
}

// ---- replay mode ----------------------------------------------------

// campaignHandler applies ingested records to live analysis state:
// syslog lines are parsed against a rolling RFC 3164 reference, LSPs
// flow through the passive listener. Per-source FIFO order is all it
// assumes — exactly what the supervisor guarantees, including across
// a kill/recover boundary.
type campaignHandler struct {
	mu        sync.Mutex
	l         *listener.Listener
	tok       *syslog.Tokenizer
	msgs      []*syslog.Message
	badSyslog int
	rolling   time.Time
	reg       *obs.Registry
}

func newCampaignHandler(network *topo.Network, start time.Time, reg *obs.Registry) *campaignHandler {
	return &campaignHandler{l: listener.New(network), tok: syslog.NewTokenizer(), rolling: start, reg: reg}
}

func (h *campaignHandler) Apply(rec serve.Record) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	switch rec.Source {
	case "syslog":
		m := new(syslog.Message)
		if err := h.tok.ParseBytes(rec.Data, h.rolling, m); err != nil {
			h.badSyslog++
			h.reg.Counter("drops.serve.syslog_parse").Add(1)
			return err
		}
		if m.Timestamp.After(h.rolling) {
			h.rolling = m.Timestamp
		}
		h.msgs = append(h.msgs, m)
		return nil
	case "isis":
		if err := h.l.Process(rec.Time, rec.Data); err != nil {
			h.reg.Counter("drops.serve.decode_errors").Add(1)
			return err
		}
		return nil
	default:
		return fmt.Errorf("unknown source %q", rec.Source)
	}
}

// fileSource replays a fixed record list, resuming at start — after
// recovery the daemon sets start to the recovered per-source count,
// so nothing is re-sent and nothing is skipped.
type fileSource struct {
	name  string
	recs  []serve.Record
	start int
}

func (s *fileSource) Name() string { return s.name }

func (s *fileSource) Run(ctx context.Context, emit func(serve.Record) error) error {
	for i := s.start; i < len(s.recs); i++ {
		if err := emit(s.recs[i]); err != nil {
			return err
		}
		s.start = i + 1
	}
	return nil
}

func runReplay(ctx context.Context, cfg serve.Config, reg *obs.Registry, dir, reportPath, debugAddr, storeDir string) error {
	mf, err := os.Open(filepath.Join(dir, "manifest.json"))
	if err != nil {
		return err
	}
	manifest, err := netsim.ReadManifest(mf)
	mf.Close()
	if err != nil {
		return err
	}
	archive, err := config.LoadDir(filepath.Join(dir, "configs"))
	if err != nil {
		return err
	}
	mined, err := config.Mine(archive)
	if err != nil {
		return err
	}

	syslogSrc, err := loadSyslogSource(filepath.Join(dir, "syslog.log"), manifest.Start)
	if err != nil {
		return err
	}
	isisSrc, err := loadISISSource(filepath.Join(dir, "lsps.log"))
	if err != nil {
		return err
	}

	h := newCampaignHandler(mined.Network, manifest.Start, reg)
	sup, rcv, err := serve.New(cfg, h, syslogSrc, isisSrc)
	if err != nil {
		return err
	}
	if rcv.Records > 0 {
		fmt.Printf("recovered %d durable records (syslog %d, isis %d); %s\n",
			rcv.Records, rcv.PerSource["syslog"], rcv.PerSource["isis"], rcv.Report)
	}
	syslogSrc.start = rcv.PerSource["syslog"]
	isisSrc.start = rcv.PerSource["isis"]

	stopDebug, err := serveDebug(debugAddr, storeDir, reg, sup)
	if err != nil {
		return err
	}
	defer stopDebug()
	if err := sup.Run(ctx); err != nil {
		return err
	}
	if ctx.Err() != nil {
		fmt.Println("drained and checkpointed; restart to resume the replay")
		return nil
	}

	res := h.l.Results()
	fmt.Printf("served: %d syslog messages (%d unparseable), %d LSPs, %d IS transitions\n",
		len(h.msgs), h.badSyslog, res.LSPCount, len(res.ISTransitions))
	if reportPath == "" {
		return nil
	}
	return writeReport(ctx, dir, reportPath, manifest, archive, mined, h)
}

// loadSyslogSource reads the raw syslog archive lines; parsing
// happens in the handler so recovery replay and live ingest share one
// code path.
func loadSyslogSource(path string, start time.Time) (*fileSource, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	src := &fileSource{name: "syslog"}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		src.recs = append(src.recs, serve.Record{
			Time: start,
			Data: append([]byte(nil), line...),
		})
	}
	return src, sc.Err()
}

// loadISISSource reads the LSP capture; each record keeps its capture
// time, which the listener needs for transition timestamps.
func loadISISSource(path string) (*fileSource, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	lsps, err := netsim.ReadLSPLog(f)
	if err != nil {
		return nil, err
	}
	src := &fileSource{name: "isis"}
	for _, c := range lsps {
		src.recs = append(src.recs, serve.Record{Time: c.Time, Data: c.Data})
	}
	return src, nil
}

// writeReport runs the comparison pipeline over the served state and
// writes the full report — the artifact the chaos gate compares
// byte-for-byte between an uninterrupted and a killed-and-resumed run.
func writeReport(ctx context.Context, dir, path string, manifest *netsim.Manifest,
	archive *config.Archive, mined *config.Mined, h *campaignHandler) error {
	tf, err := os.Open(filepath.Join(dir, "tickets.json"))
	if err != nil {
		return err
	}
	corpus, err := tickets.ReadJSON(tf)
	tf.Close()
	if err != nil {
		return err
	}
	cf, err := os.Open(filepath.Join(dir, "customers.json"))
	if err != nil {
		return err
	}
	customers, err := topo.ReadCustomersJSON(cf)
	cf.Close()
	if err != nil {
		return err
	}
	res := h.l.Results()
	a, err := core.Analyze(ctx, core.Input{
		Network:         mined.Network,
		Customers:       customers,
		Syslog:          h.msgs,
		ISTransitions:   res.ISTransitions,
		IPTransitions:   res.IPTransitions,
		Start:           manifest.Start,
		End:             manifest.End,
		ListenerOffline: manifest.Offline(),
		Tickets:         tickets.NewIndex(corpus),
	})
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := report.FullReport(ctx, f, a, archive.FileCount(), manifest.Counts.LSPUpdates, a.In.Parallelism); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}

// ---- live mode ------------------------------------------------------

// udpSource turns a UDP socket into a supervised record source: one
// datagram, one record. A read error returns from Run and lets the
// supervisor restart the source with backoff (re-binding the socket),
// replacing yet another hand-rolled retry loop.
type udpSource struct {
	name string
	addr string
	clk  clock.Clock
}

func (s *udpSource) Name() string { return s.name }

func (s *udpSource) Run(ctx context.Context, emit func(serve.Record) error) error {
	udpAddr, err := net.ResolveUDPAddr("udp", s.addr)
	if err != nil {
		return err
	}
	conn, err := net.ListenUDP("udp", udpAddr)
	if err != nil {
		return err
	}
	defer conn.Close()
	// Unblock the read when the supervisor stops: the close makes the
	// pending ReadFromUDP fail, and ctx.Err tells us it was shutdown.
	go func() {
		<-ctx.Done()
		conn.Close()
	}()
	buf := make([]byte, 64*1024)
	for {
		n, _, err := conn.ReadFromUDP(buf)
		if err != nil {
			if ctx.Err() != nil {
				return nil
			}
			var nerr net.Error
			if errors.As(err, &nerr) && nerr.Timeout() {
				continue
			}
			return err
		}
		rec := serve.Record{Time: s.clk.Now(), Data: append([]byte(nil), buf[:n]...)}
		if err := emit(rec); err != nil {
			return err
		}
	}
}

func runLive(ctx context.Context, cfg serve.Config, reg *obs.Registry, listenSyslog, listenISIS, configDir, debugAddr, storeDir string) error {
	archive, err := config.LoadDir(configDir)
	if err != nil {
		return err
	}
	mined, err := config.Mine(archive)
	if err != nil {
		return err
	}
	clk := cfg.Clock
	h := newCampaignHandler(mined.Network, clk.Now(), reg)
	var sources []serve.Source
	if listenSyslog != "" {
		sources = append(sources, &udpSource{name: "syslog", addr: listenSyslog, clk: clk})
	}
	if listenISIS != "" {
		sources = append(sources, &udpSource{name: "isis", addr: listenISIS, clk: clk})
	}
	sup, rcv, err := serve.New(cfg, h, sources...)
	if err != nil {
		return err
	}
	if rcv.Records > 0 {
		fmt.Printf("recovered %d durable records; %s\n", rcv.Records, rcv.Report)
	}
	fmt.Printf("serving: %d routers, %d links in namespace\n",
		len(mined.Network.Routers), len(mined.Network.Links))
	stopDebug, err := serveDebug(debugAddr, storeDir, reg, sup)
	if err != nil {
		return err
	}
	defer stopDebug()
	if err := sup.Run(ctx); err != nil {
		return err
	}
	res := h.l.Results()
	fmt.Printf("stopped: %d syslog messages (%d unparseable), %d LSPs, %d IS transitions, %d decode errors\n",
		len(h.msgs), h.badSyslog, res.LSPCount, len(res.ISTransitions), res.DecodeErrors)
	return nil
}
